// Package disk is the real on-disk durability layer under the engine's WAL:
// a segmented file log plus checkpoints, with crash recovery that survives an
// actual process restart — the step past internal/wal's simulated device,
// whose "durable image" dies with the process.
//
// A Store implements wal.Device: the group-commit flusher stages each batch
// (Append) and then pays one real File.Sync (Sync). Staged bytes live only in
// memory until the sync — exactly a process's un-fsynced page-cache writes —
// so a crash between Append and Sync loses the batch whole, and a crash
// during the sync's write() leaves a torn tail that recovery truncates at
// the first bad frame. Because acknowledgement happens only after Sync
// returns, no acknowledged commit is ever behind the truncation point:
// acked ⊆ recovered holds at the file layer by construction.
//
// Checkpoints bound recovery time and disk growth: the engine's committed
// projection is serialized (as ordinary WAL insert records), written to a
// temp file, fsynced, atomically renamed, and only then are fully-covered
// segments deleted. Recovery loads the newest valid checkpoint and replays
// the segments' frames past its LSN.
//
// The paper's §4.3 crash-handling bug class is the motivation: an engine
// whose durability story is "a flag in one process" cannot express any bug
// that needs a restart or a torn file. This package makes those observable —
// internal/chaos's restart mode re-opens the data directory after killing
// the whole serving stack and checks the oracles across the real boundary.
package disk

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File is the write surface the store needs from a segment file. *os.File
// satisfies it; Options.WrapFile lets tests interpose a fault injector
// (faults.TornFile) between the store and the real file.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures a Store.
type Options struct {
	// SegmentSize is the rotation threshold: once the active segment reaches
	// it, the next flush opens a fresh segment. Batches never split across
	// segments, so segments exceed the threshold by at most one batch.
	// 0 means 1 MiB.
	SegmentSize int64
	// WrapFile, when non-nil, wraps every newly opened or reopened segment
	// file. Test seam for torn-write/partial-fsync injection.
	WrapFile func(f *os.File) File
}

func (o Options) segmentSize() int64 {
	if o.SegmentSize > 0 {
		return o.SegmentSize
	}
	return 1 << 20
}

func (o Options) wrap(f *os.File) File {
	if o.WrapFile != nil {
		return o.WrapFile(f)
	}
	return f
}

// segment is one on-disk segment file. Its name carries the LSN of its first
// frame; its last LSN is implied by the next segment's name (or by scanning,
// for the active segment).
type segment struct {
	path  string
	first uint64
}

// Recovered is what Open found in the data directory.
type Recovered struct {
	// Checkpoint holds the newest valid checkpoint's snapshot: WAL-encoded
	// insert records of the committed projection. Nil when no checkpoint
	// exists.
	Checkpoint []byte
	// CheckpointLSN is the LSN the checkpoint covers: every record with
	// LSN <= CheckpointLSN is reflected in Checkpoint.
	CheckpointLSN uint64
	// Tail holds the recovered WAL frames with LSN > CheckpointLSN, in
	// order. Replay Checkpoint, then Tail, to rebuild the committed state.
	Tail []byte
	// LastLSN is the highest recovered LSN (checkpoint or tail).
	LastLSN uint64
	// TruncatedTail is how many torn bytes recovery cut from the final
	// segment (0 on a clean shutdown).
	TruncatedTail int64
}

// Empty reports whether the directory held no durable state at all.
func (r *Recovered) Empty() bool {
	return r.LastLSN == 0 && r.Checkpoint == nil
}

// Store is a segmented on-disk WAL with checkpoints. It implements
// wal.Device. Safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	segs    []segment // sorted by first LSN; last entry is the active segment
	cur     File      // active segment handle, nil until the first flush
	curSize int64     // bytes in the active segment (header + frames)

	// pending is staged by Append and made durable by the next Sync —
	// the page-cache analogue: a crash here loses it whole.
	pending      []byte
	pendingFirst uint64
	pendingLast  uint64

	syncedLSN uint64
	ckptLSN   uint64
	closed    bool
}

// Open opens (or creates) a data directory and recovers its state: newest
// valid checkpoint, then every segment frame past it, truncating a torn tail
// on the final segment. A bad frame in any earlier segment — which no torn
// tail can explain — fails recovery with ErrCorrupt rather than silently
// dropping synced records.
func Open(dir string, opt Options) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("disk: %w", err)
	}
	s := &Store{dir: dir, opt: opt}
	rec := &Recovered{}

	names, err := cleanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	// Newest checkpoint that validates wins; invalid ones (a torn rename
	// cannot produce them, but recovery trusts no file on faith) are
	// deleted so they are not rescanned forever.
	for _, ck := range checkpointsDesc(names) {
		body, lsn, err := readCheckpoint(filepath.Join(dir, ck))
		if err != nil {
			_ = os.Remove(filepath.Join(dir, ck))
			continue
		}
		rec.Checkpoint = body
		rec.CheckpointLSN = lsn
		s.ckptLSN = lsn
		break
	}

	segs := segmentsAsc(dir, names)
	// Resume an interrupted prune: a segment whose successor starts at or
	// below the checkpoint LSN is fully covered by the checkpoint.
	segs, err = s.pruneCovered(segs, rec.CheckpointLSN)
	if err != nil {
		return nil, nil, err
	}

	prevLSN := uint64(0)
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, nil, fmt.Errorf("disk: %w", err)
		}
		if err := checkHeader(data, segMagic); err != nil {
			return nil, nil, fmt.Errorf("%v (segment %s)", err, filepath.Base(seg.path))
		}
		body := data[headerSize:]
		valid, err := ScanFrames(body, func(lsn uint64, frame []byte) error {
			if lsn <= prevLSN {
				return fmt.Errorf("%w: LSN %d after %d in %s", ErrCorrupt, lsn, prevLSN, filepath.Base(seg.path))
			}
			prevLSN = lsn
			if lsn > rec.CheckpointLSN {
				rec.Tail = append(rec.Tail, frame...)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if valid < len(body) {
			if i != len(segs)-1 {
				return nil, nil, fmt.Errorf("%w: bad frame at %d in non-final segment %s",
					ErrCorrupt, headerSize+valid, filepath.Base(seg.path))
			}
			// Torn tail: the crash cut the last write() short of its fsync,
			// so nothing past the cut was ever acknowledged. Truncate at the
			// first bad frame — never past a synced LSN, because syncs only
			// cover whole frames.
			rec.TruncatedTail = int64(len(body) - valid)
			if err := os.Truncate(seg.path, int64(headerSize+valid)); err != nil {
				return nil, nil, fmt.Errorf("disk: truncating torn tail: %w", err)
			}
		}
		s.segs = append(s.segs, segment{path: seg.path, first: seg.first})
	}
	rec.LastLSN = prevLSN
	if rec.CheckpointLSN > rec.LastLSN {
		rec.LastLSN = rec.CheckpointLSN
	}
	s.syncedLSN = rec.LastLSN

	// Reopen the final segment for appending, past the valid prefix.
	if n := len(s.segs); n > 0 {
		path := s.segs[n-1].path
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("disk: %w", err)
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("disk: %w", err)
		}
		s.cur = opt.wrap(f)
		s.curSize = size
	}
	return s, rec, nil
}

// cleanDir lists dir, removing leftover temp files from an interrupted
// checkpoint.
func cleanDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

func checkpointsDesc(names []string) []string {
	var cks []string
	for _, n := range names {
		if strings.HasPrefix(n, "checkpoint-") && strings.HasSuffix(n, ".ckpt") {
			cks = append(cks, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(cks))) // zero-padded LSN: lexical = numeric
	return cks
}

func segmentsAsc(dir string, names []string) []segment {
	var segs []segment
	for _, n := range names {
		if !strings.HasPrefix(n, "wal-") || !strings.HasSuffix(n, ".seg") {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "wal-"), ".seg"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, n), first: lsn})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs
}

// pruneCovered deletes every segment fully covered by the checkpoint at
// ckptLSN: a segment whose successor's first LSN is at or below ckptLSN+1
// holds only frames <= ckptLSN. The final segment is never deleted — it is
// the append point.
func (s *Store) pruneCovered(segs []segment, ckptLSN uint64) ([]segment, error) {
	if ckptLSN == 0 {
		return segs, nil
	}
	kept := segs[:0]
	for i, seg := range segs {
		if i < len(segs)-1 && segs[i+1].first-1 <= ckptLSN {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("disk: pruning %s: %w", seg.path, err)
			}
			continue
		}
		kept = append(kept, seg)
	}
	return kept, nil
}

// ---- wal.Device ----

// Append stages p — whole encoded WAL records — for the next Sync. Staged
// bytes are volatile: a crash before the sync loses them, which is exactly
// the durability contract the WAL's crash points assume.
func (s *Store) Append(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("disk: store closed")
	}
	if len(s.pending) == 0 {
		s.pendingFirst = firstLSN(p)
	}
	if last := lastLSNIn(p); last > 0 {
		s.pendingLast = last
	}
	s.pending = append(s.pending, p...)
	return nil
}

// Sync makes every staged byte durable: write() into the active segment
// (rotating first if it is full), then File.Sync. A sync with nothing staged
// is a no-op — a concurrent flusher already covered those bytes.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("disk: store closed")
	}
	if len(s.pending) == 0 {
		return nil
	}
	if s.cur == nil || s.curSize >= s.opt.segmentSize() {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.cur.Write(s.pending)
	s.curSize += int64(n)
	if err != nil {
		return fmt.Errorf("disk: segment write: %w", err)
	}
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("disk: segment sync: %w", err)
	}
	s.syncedLSN = s.pendingLast
	s.pending = s.pending[:0]
	s.pendingFirst, s.pendingLast = 0, 0
	return nil
}

// rotateLocked closes the active segment (already synced at rest) and opens
// a fresh one named after the first staged LSN. Caller holds s.mu.
func (s *Store) rotateLocked() error {
	if s.cur != nil {
		if err := s.cur.Close(); err != nil {
			return fmt.Errorf("disk: closing segment: %w", err)
		}
		s.cur = nil
	}
	first := s.pendingFirst
	if first == 0 {
		first = s.syncedLSN + 1
	}
	path := filepath.Join(s.dir, fmt.Sprintf("wal-%020d.seg", first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("disk: creating segment: %w", err)
	}
	s.cur = s.opt.wrap(f)
	hdr := appendHeader(nil, segMagic)
	n, err := s.cur.Write(hdr)
	s.curSize = int64(n)
	if err != nil {
		return fmt.Errorf("disk: segment header: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	s.segs = append(s.segs, segment{path: path, first: first})
	return nil
}

// syncDir fsyncs the data directory so created/renamed/removed entries are
// durable. Process-death alone never loses a dirent; this covers the
// whole-node story the chaos harness aspires to.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("disk: dir sync: %w", err)
	}
	return nil
}

// ---- checkpoints ----

// Checkpoint durably records a snapshot of the committed projection covering
// every LSN <= lsn: temp file, fsync, atomic rename, dir fsync — then, and
// only then, older checkpoints and fully-covered segments are deleted.
// snapshot must be WAL-encoded records (engine.Snapshot produces them).
// A checkpoint at or below the current checkpoint LSN is a no-op.
func (s *Store) Checkpoint(snapshot []byte, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("disk: store closed")
	}
	if lsn <= s.ckptLSN {
		return nil
	}
	final := filepath.Join(s.dir, fmt.Sprintf("checkpoint-%020d.ckpt", lsn))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("disk: checkpoint: %w", err)
	}
	werr := func() error {
		if _, err := f.Write(appendCkptPreamble(nil, lsn)); err != nil {
			return err
		}
		if _, err := f.Write(snapshot); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("disk: checkpoint: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("disk: checkpoint rename: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}

	// The checkpoint is durable; everything it covers is now garbage.
	prevCkpt := s.ckptLSN
	s.ckptLSN = lsn
	if prevCkpt > 0 {
		_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf("checkpoint-%020d.ckpt", prevCkpt)))
	}
	kept, err := s.pruneCovered(s.segs, lsn)
	if err != nil {
		return err
	}
	s.segs = kept
	return s.syncDir()
}

// readCheckpoint loads and validates one checkpoint file, returning its
// snapshot body and covered LSN.
func readCheckpoint(path string) ([]byte, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("disk: %w", err)
	}
	lsn, err := checkCkptPreamble(data)
	if err != nil {
		return nil, 0, err
	}
	body := data[ckptPreamble:]
	valid, _ := ScanFrames(body, nil)
	if valid != len(body) {
		return nil, 0, fmt.Errorf("%w: checkpoint frame at %d invalid", ErrCorrupt, ckptPreamble+valid)
	}
	return body, lsn, nil
}

// ---- introspection / lifecycle ----

// SyncedLSN returns the highest LSN durable on disk.
func (s *Store) SyncedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncedLSN
}

// CheckpointLSN returns the LSN covered by the newest durable checkpoint.
func (s *Store) CheckpointLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptLSN
}

// Segments returns the live segment file paths, oldest first.
func (s *Store) Segments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.segs))
	for i, seg := range s.segs {
		out[i] = seg.path
	}
	return out
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Close closes the store. Staged-but-unsynced bytes are DISCARDED, not
// flushed: nothing staged was ever acknowledged (acks follow Sync), so
// dropping them is always correct, and flushing here would turn Close into
// a hidden commit point the crash model does not have.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.pending = nil
	if s.cur != nil {
		err := s.cur.Close()
		s.cur = nil
		if err != nil {
			return fmt.Errorf("disk: %w", err)
		}
	}
	return nil
}

// lastLSNIn walks the length prefixes of whole frames in p (no CRC checks —
// p was just encoded by the WAL) and returns the last frame's LSN, or 0.
func lastLSNIn(p []byte) uint64 {
	off, last := 0, uint64(0)
	for off+8 <= len(p) {
		plen := binary.LittleEndian.Uint32(p[off:])
		total := 4 + int(plen) + 4
		if plen < 8 || off+total > len(p) {
			break
		}
		last = binary.LittleEndian.Uint64(p[off+4:])
		off += total
	}
	return last
}
