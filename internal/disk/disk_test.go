package disk

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhoctx/internal/faults"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

// frame encodes one synthetic WAL record for lsn.
func frame(t testing.TB, lsn uint64) []byte {
	t.Helper()
	enc, err := wal.Encode(wal.Record{
		LSN:   lsn,
		TxnID: lsn,
		Ops: []wal.Op{{
			Kind:  wal.OpInsert,
			Table: "accounts",
			PK:    int64(lsn),
			Row:   storage.Row{int64(lsn), fmt.Sprintf("row-%d", lsn)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// lsnsOf decodes raw and returns the record LSNs in order.
func lsnsOf(t testing.TB, raw []byte) []uint64 {
	t.Helper()
	recs, err := wal.Records(raw)
	if err != nil {
		t.Fatalf("decoding recovered frames: %v", err)
	}
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.LSN
	}
	return out
}

func wantLSNs(t testing.TB, raw []byte, want ...uint64) {
	t.Helper()
	got := lsnsOf(t, raw)
	if len(got) != len(want) {
		t.Fatalf("recovered LSNs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered LSNs %v, want %v", got, want)
		}
	}
}

// TestRoundTrip: frames synced through the store come back whole from a cold
// re-open, in order, with the right LastLSN.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh dir not empty: %+v", rec)
	}
	for lsn := uint64(1); lsn <= 5; lsn++ {
		if err := s.Append(frame(t, lsn)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.SyncedLSN(); got != 5 {
		t.Fatalf("SyncedLSN = %d, want 5", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantLSNs(t, rec2.Tail, 1, 2, 3, 4, 5)
	if rec2.LastLSN != 5 || rec2.Checkpoint != nil || rec2.TruncatedTail != 0 {
		t.Fatalf("recovered = %+v, want LastLSN 5, no checkpoint, no truncation", rec2)
	}

	// The reopened store appends where the old one left off.
	if err := s2.Append(frame(t, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, rec3.Tail, 1, 2, 3, 4, 5, 6)
}

// TestRotation: a tiny segment threshold produces multiple segment files,
// named by their first LSN, and recovery stitches them back in order.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for lsn := uint64(1); lsn <= n; lsn++ {
		if err := s.Append(frame(t, lsn)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	segs := s.Segments()
	if len(segs) < 3 {
		t.Fatalf("got %d segments with a 128-byte threshold, want several: %v", len(segs), segs)
	}
	for _, p := range segs {
		base := filepath.Base(p)
		if !strings.HasPrefix(base, "wal-") || !strings.HasSuffix(base, ".seg") {
			t.Fatalf("segment name %q", base)
		}
	}
	s.Close()

	_, rec, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	for i := range want {
		want[i] = uint64(i + 1)
	}
	wantLSNs(t, rec.Tail, want...)
}

// TestBatchNeverSplitsSegments: a multi-frame batch staged by several Appends
// and flushed by one Sync lands in a single segment even when it overshoots
// the threshold.
func TestBatchNeverSplitsSegments(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 6; lsn++ {
		if err := s.Append(frame(t, lsn)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Segments()); got != 1 {
		t.Fatalf("batch split across %d segments", got)
	}
	s.Close()
	_, rec, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, rec.Tail, 1, 2, 3, 4, 5, 6)
}

// snapshotFor builds a checkpoint body: one synthetic record per live row.
func snapshotFor(t testing.TB, lsns ...uint64) []byte {
	t.Helper()
	var b []byte
	for _, lsn := range lsns {
		b = append(b, frame(t, lsn)...)
	}
	return b
}

// TestCheckpointPrunesAndRecovers: after a checkpoint at LSN k, covered
// segments are deleted, and recovery returns the checkpoint body plus only
// the frames past k.
func TestCheckpointPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 20; lsn++ {
		if err := s.Append(frame(t, lsn)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	before := len(s.Segments())
	if err := s.Checkpoint(snapshotFor(t, 1, 2, 3), 15); err != nil {
		t.Fatal(err)
	}
	after := len(s.Segments())
	if after >= before {
		t.Fatalf("checkpoint pruned nothing: %d -> %d segments", before, after)
	}
	if got := s.CheckpointLSN(); got != 15 {
		t.Fatalf("CheckpointLSN = %d, want 15", got)
	}
	s.Close()

	s2, rec, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointLSN != 15 {
		t.Fatalf("recovered CheckpointLSN = %d, want 15", rec.CheckpointLSN)
	}
	wantLSNs(t, rec.Checkpoint, 1, 2, 3)
	got := lsnsOf(t, rec.Tail)
	for _, lsn := range got {
		if lsn <= 15 {
			t.Fatalf("tail contains checkpointed LSN %d: %v", lsn, got)
		}
	}
	if got[len(got)-1] != 20 || rec.LastLSN != 20 {
		t.Fatalf("tail %v, LastLSN %d, want last 20", got, rec.LastLSN)
	}

	// A second checkpoint replaces the first and drops the old file.
	if err := s2.Checkpoint(snapshotFor(t, 1, 2, 3, 4), 20); err != nil {
		t.Fatal(err)
	}
	cks, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if len(cks) != 1 {
		t.Fatalf("%d checkpoint files after re-checkpoint, want 1: %v", len(cks), cks)
	}
	// Stale checkpoint request is a no-op.
	if err := s2.Checkpoint(snapshotFor(t, 9), 10); err != nil {
		t.Fatal(err)
	}
	if got := s2.CheckpointLSN(); got != 20 {
		t.Fatalf("stale checkpoint moved the LSN: %d", got)
	}
	s2.Close()
}

// TestTornTailTruncated: a write torn partway through the final frame is cut
// at the first bad frame on recovery — every synced record survives, nothing
// past the cut is surfaced, and the file is usable for appends again.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	var torn *faults.TornFile
	// Let three single-frame syncs through, then tear the fourth frame's
	// write 7 bytes in.
	cut := int64(headerSize)
	for lsn := uint64(1); lsn <= 3; lsn++ {
		cut += int64(len(frame(t, lsn)))
	}
	cut += 7

	s, _, err := Open(dir, Options{WrapFile: func(f *os.File) File {
		torn = faults.NewTornFile(f, cut)
		return torn
	}})
	if err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 3; lsn++ {
		if err := s.Append(frame(t, lsn)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(frame(t, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn sync error = %v, want ErrInjected", err)
	}
	if !torn.Torn() {
		t.Fatal("injector did not fire")
	}
	s.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery over torn tail failed: %v", err)
	}
	wantLSNs(t, rec.Tail, 1, 2, 3)
	if rec.TruncatedTail != 7 {
		t.Fatalf("TruncatedTail = %d, want 7", rec.TruncatedTail)
	}

	// And the truncated segment accepts appends again.
	s2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(frame(t, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, rec2.Tail, 1, 2, 3, 4)
}

// TestTornTailEveryCut sweeps the cut across every byte offset of the final
// sync's write and checks the durability invariant at each: recovery never
// loses an acked LSN, never surfaces an unacked one as acked state beyond
// what a torn tail allows, and always yields a cleanly decodable tail.
func TestTornTailEveryCut(t *testing.T) {
	base := int64(headerSize)
	var ackedFrames []int64
	for lsn := uint64(1); lsn <= 3; lsn++ {
		base += int64(len(frame(t, lsn)))
		ackedFrames = append(ackedFrames, base)
	}
	lastLen := int64(len(frame(t, 4)))

	for cutOff := int64(0); cutOff <= lastLen; cutOff++ {
		dir := t.TempDir()
		cut := base + cutOff
		s, _, err := Open(dir, Options{WrapFile: func(f *os.File) File {
			return faults.NewTornFile(f, cut)
		}})
		if err != nil {
			t.Fatal(err)
		}
		acked := uint64(0)
		for lsn := uint64(1); lsn <= 4; lsn++ {
			if err := s.Append(frame(t, lsn)); err != nil {
				t.Fatal(err)
			}
			if err := s.Sync(); err != nil {
				break
			}
			acked = lsn
		}
		s.Close()

		_, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cutOff, err)
		}
		if rec.LastLSN < acked {
			t.Fatalf("cut %d: recovered LastLSN %d < acked %d — lost a synced commit",
				cutOff, rec.LastLSN, acked)
		}
		got := lsnsOf(t, rec.Tail)
		for i, lsn := range got {
			if lsn != uint64(i+1) {
				t.Fatalf("cut %d: recovered LSNs %v not a prefix of 1..4", cutOff, got)
			}
		}
	}
}

// TestCorruptMiddleSegmentRefused: a flipped byte in a non-final segment is
// corruption no torn tail explains; recovery must fail loudly, not silently
// truncate synced records.
func TestCorruptMiddleSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 20; lsn++ {
		if err := s.Append(frame(t, lsn)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	segs := s.Segments()
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	s.Close()

	victim := segs[1]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+10] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{SegmentSize: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovery over corrupt middle segment: err = %v, want ErrCorrupt", err)
	}
}

// TestCloseDiscardsPending: bytes staged but never synced were never acked;
// Close drops them and recovery does not see them.
func TestCloseDiscardsPending(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(frame(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(frame(t, 2)); err != nil {
		t.Fatal(err)
	}
	s.Close() // no Sync: frame 2 must vanish

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, rec.Tail, 1)
}

// TestCheckpointCrashArtifacts: leftover .tmp files are swept, and a garbage
// .ckpt file is rejected in favour of an older valid checkpoint.
func TestCheckpointCrashArtifacts(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 6; lsn++ {
		if err := s.Append(frame(t, lsn)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(snapshotFor(t, 1, 2), 4); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A checkpoint write that died before its rename…
	tmp := filepath.Join(dir, "checkpoint-00000000000000000099.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	// …and a "newer" checkpoint that is pure garbage.
	junk := filepath.Join(dir, "checkpoint-00000000000000000098.ckpt")
	if err := os.WriteFile(junk, []byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointLSN != 4 {
		t.Fatalf("recovered CheckpointLSN = %d, want the valid checkpoint at 4", rec.CheckpointLSN)
	}
	wantLSNs(t, rec.Checkpoint, 1, 2)
	wantLSNs(t, rec.Tail, 5, 6)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale .tmp survived recovery")
	}
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Fatal("garbage checkpoint survived recovery")
	}
}

// TestStoreAsWALDevice: the store under a real group-commit wal.Log — the
// durable file image equals the log's in-memory image after every ack, and a
// cold re-open returns exactly the log's records.
func TestStoreAsWALDevice(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	l := wal.NewWithOptions(wal.Options{GroupCommit: true, Device: s})
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int64) {
			for i := int64(0); i < 25; i++ {
				if _, err := l.Append(uint64(w+1), []wal.Op{{
					Kind: wal.OpInsert, Table: "t", PK: w*100 + i, Row: storage.Row{w*100 + i},
				}}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(w))
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	want := l.Bytes()
	s.Close()

	_, rec, err := Open(dir, Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Tail) != string(want) {
		t.Fatalf("recovered image (%d bytes) != log image (%d bytes)", len(rec.Tail), len(want))
	}
	if rec.LastLSN != l.DurableLSN() {
		t.Fatalf("recovered LastLSN %d != durable LSN %d", rec.LastLSN, l.DurableLSN())
	}
}
