package disk

import (
	"bytes"
	"testing"

	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

// fuzzFrame builds a valid frame for the seed corpus.
func fuzzFrame(lsn uint64) []byte {
	enc, err := wal.Encode(wal.Record{
		LSN:   lsn,
		TxnID: lsn,
		Ops:   []wal.Op{{Kind: wal.OpInsert, Table: "t", PK: int64(lsn), Row: storage.Row{int64(lsn)}}},
	})
	if err != nil {
		panic(err)
	}
	return enc
}

// FuzzSegmentScan hammers the recovery scanner with arbitrary byte strings —
// the exact situation after a torn write or on-disk corruption. The scanner
// must never panic, must report a valid-prefix length that is in bounds and
// self-consistent (re-scanning the prefix validates all of it), and must
// never surface a frame that starts at or beyond the first invalid byte.
func FuzzSegmentScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzFrame(1))
	f.Add(append(fuzzFrame(1), fuzzFrame(2)...))
	f.Add(append(fuzzFrame(7), fuzzFrame(8)[:9]...)) // valid frame + torn tail
	f.Add([]byte("\xff\xff\xff\xff garbage that is not a frame"))
	flip := fuzzFrame(3)
	flip[len(flip)/2] ^= 0x01 // payload bit flip: CRC must catch it
	f.Add(flip)
	huge := []byte{0xff, 0xff, 0xff, 0x7f} // absurd length prefix
	f.Add(append(huge, bytes.Repeat([]byte{0xaa}, 64)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		type seen struct {
			lsn        uint64
			start, end int
		}
		var frames []seen
		off := 0
		valid, err := ScanFrames(data, func(lsn uint64, frame []byte) error {
			start := off
			off += len(frame)
			frames = append(frames, seen{lsn: lsn, start: start, end: off})
			if len(frame) == 0 {
				t.Fatal("scanner surfaced an empty frame")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("ScanFrames returned an error with a non-erroring callback: %v", err)
		}
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d out of range [0, %d]", valid, len(data))
		}
		for _, fr := range frames {
			if fr.end > valid {
				t.Fatalf("frame [%d,%d) surfaced past the valid prefix %d", fr.start, fr.end, valid)
			}
		}
		// Frames must tile the valid prefix exactly.
		if off != valid {
			t.Fatalf("surfaced frames cover %d bytes, valid prefix is %d", off, valid)
		}
		// Re-scanning the valid prefix must validate all of it and surface
		// the same frames — recovery truncates to this prefix and trusts it.
		revalid, err := ScanFrames(data[:valid], nil)
		if err != nil || revalid != valid {
			t.Fatalf("re-scan of valid prefix: valid %d -> %d, err %v", valid, revalid, err)
		}
		// Nothing decodable may start at the first invalid byte: recovery
		// truncates there, and a decodable frame would mean dropped data…
		// unless the scan stopped only because the NEXT bytes are torn.
		if valid < len(data) {
			if n, _, ok := checkFrame(data[valid:]); ok {
				t.Fatalf("frame of length %d decodes at the truncation point %d", n, valid)
			}
		}
	})
}
