package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment files hold a header followed by a run of frames in internal/wal's
// record encoding:
//
//	frame   := plen(u32 LE) | payload | crc32(u32 LE, IEEE, over payload)
//	payload := lsn(u64 LE) | ...opaque to this layer...
//
// The scanner below is the recovery primitive: it walks frames front to
// back, stops at the first frame that does not check out, and NEVER returns
// bytes past that point. A frame fails the scan when its length prefix does
// not fit in the remaining bytes (a torn tail), its CRC mismatches (a torn
// or corrupted write), its payload is too short to hold an LSN, or its
// declared length is absurd (a length prefix read out of garbage). The
// distinction between "clean end", "torn tail", and "corruption" is the
// caller's to make — recovery truncates a last segment at the cut and
// refuses a cut in any earlier segment.

// ErrCorrupt reports an invalid frame or header in the middle of the
// on-disk log, where a torn tail cannot explain it.
var ErrCorrupt = errors.New("disk: corrupt")

// maxFramePayload bounds a frame's declared payload length. A real record is
// a transaction's redo ops — far below this; a longer declaration is garbage
// read as a length prefix, and treating it as a frame would make the scanner
// skip arbitrarily far past a corruption point.
const maxFramePayload = 64 << 20

// ScanFrames walks the frames in p, invoking fn for each valid frame with
// its LSN and its full encoded bytes (aliasing p). It returns the number of
// bytes of p covered by valid frames: p[:valid] is the longest decodable
// prefix, and no frame starting at or after the first invalid byte is ever
// surfaced. A non-nil error from fn stops the scan and is returned with the
// bytes covered so far.
func ScanFrames(p []byte, fn func(lsn uint64, frame []byte) error) (valid int, err error) {
	off := 0
	for off < len(p) {
		n, lsn, ok := checkFrame(p[off:])
		if !ok {
			return off, nil
		}
		if fn != nil {
			if err := fn(lsn, p[off:off+n]); err != nil {
				return off, err
			}
		}
		off += n
	}
	return off, nil
}

// checkFrame validates the frame at the front of p, returning its total
// length and LSN. ok is false when the frame is truncated, oversized, CRC
// mismatched, or too short to carry an LSN.
func checkFrame(p []byte) (n int, lsn uint64, ok bool) {
	if len(p) < 4 {
		return 0, 0, false
	}
	plen := binary.LittleEndian.Uint32(p)
	if plen < 8 || plen > maxFramePayload {
		return 0, 0, false
	}
	total := 4 + int(plen) + 4
	if total > len(p) {
		return 0, 0, false
	}
	payload := p[4 : 4+plen]
	want := binary.LittleEndian.Uint32(p[4+plen:])
	if crc32.ChecksumIEEE(payload) != want {
		return 0, 0, false
	}
	return total, binary.LittleEndian.Uint64(payload), true
}

// firstLSN returns the LSN of the first frame in p, or 0 when p does not
// start with a valid frame. The store uses it to name a fresh segment after
// the first record it will hold.
func firstLSN(p []byte) uint64 {
	_, lsn, ok := checkFrame(p)
	if !ok {
		return 0
	}
	return lsn
}

// ---- file headers ----
//
// Segment and checkpoint files both start with a 16-byte header:
//
//	magic(8) | version(u32 LE) | flags(u32 LE)
//
// Checkpoint files follow the header with:
//
//	lastLSN(u64 LE) | crc32(u32 LE over magic..lastLSN)
//
// and then the snapshot's frames. The checkpoint trailer CRC covers the
// header+LSN so a checkpoint whose preamble was torn mid-write is detected
// even before its frames are scanned (the atomic-rename protocol should make
// that impossible; recovery still refuses to trust a file on faith).

const (
	segMagic      = "ADHOCSEG"
	ckptMagic     = "ADHOCCKP"
	formatVersion = 1

	headerSize   = 16
	ckptPreamble = headerSize + 8 + 4
)

func appendHeader(b []byte, magic string) []byte {
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint32(b, formatVersion)
	b = binary.LittleEndian.AppendUint32(b, 0)
	return b
}

// checkHeader validates a file's 16-byte header.
func checkHeader(p []byte, magic string) error {
	if len(p) < headerSize {
		return fmt.Errorf("%w: file shorter than its header (%d bytes)", ErrCorrupt, len(p))
	}
	if string(p[:8]) != magic {
		return fmt.Errorf("%w: bad magic %q, want %q", ErrCorrupt, p[:8], magic)
	}
	if v := binary.LittleEndian.Uint32(p[8:]); v != formatVersion {
		return fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, v, formatVersion)
	}
	return nil
}

// appendCkptPreamble writes the checkpoint preamble for lastLSN.
func appendCkptPreamble(b []byte, lastLSN uint64) []byte {
	b = appendHeader(b, ckptMagic)
	b = binary.LittleEndian.AppendUint64(b, lastLSN)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[len(b)-headerSize-8:]))
	return b
}

// checkCkptPreamble validates a checkpoint preamble and returns its LSN.
func checkCkptPreamble(p []byte) (uint64, error) {
	if err := checkHeader(p, ckptMagic); err != nil {
		return 0, err
	}
	if len(p) < ckptPreamble {
		return 0, fmt.Errorf("%w: checkpoint shorter than its preamble", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(p[headerSize+8:])
	if crc32.ChecksumIEEE(p[:headerSize+8]) != want {
		return 0, fmt.Errorf("%w: checkpoint preamble CRC mismatch", ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(p[headerSize:]), nil
}
