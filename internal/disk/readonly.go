package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ReadRecovered recovers a data directory's durable state without mutating
// it: no torn-tail truncation, no checkpoint or temp-file deletion, and no
// write-opens. It is the forensic counterpart to Open, built for provenance
// queries over a directory that may belong to a live (or crashed) store.
//
// Where Open is strict — a bad frame in a non-final segment fails recovery —
// ReadRecovered is tolerant: scanning stops at the first anomaly (bad
// header, bad frame, or non-monotonic LSN) and everything before it is
// returned. Recovered.TruncatedTail counts the bytes ignored past the stop
// point across all remaining segments; callers must not attribute anything
// to them.
func ReadRecovered(dir string) (*Recovered, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		names = append(names, e.Name())
	}

	rec := &Recovered{}
	// Newest checkpoint that validates wins; invalid ones are skipped (Open
	// deletes them — a forensic read must not).
	for _, ck := range checkpointsDesc(names) {
		body, lsn, err := readCheckpoint(filepath.Join(dir, ck))
		if err != nil {
			continue
		}
		rec.Checkpoint = body
		rec.CheckpointLSN = lsn
		break
	}

	segs := segmentsAsc(dir, names)
	// Skip segments fully covered by the checkpoint, mirroring pruneCovered's
	// coverage rule without the deletes.
	if rec.CheckpointLSN > 0 {
		kept := segs[:0]
		for i, seg := range segs {
			if i < len(segs)-1 && segs[i+1].first-1 <= rec.CheckpointLSN {
				continue
			}
			kept = append(kept, seg)
		}
		segs = kept
	}

	prevLSN := uint64(0)
	stopped := false
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("disk: %w", err)
		}
		if stopped {
			rec.TruncatedTail += int64(len(data))
			continue
		}
		if err := checkHeader(data, segMagic); err != nil {
			rec.TruncatedTail += int64(len(data))
			stopped = true
			continue
		}
		body := data[headerSize:]
		valid, _ := ScanFrames(body, func(lsn uint64, frame []byte) error {
			if lsn <= prevLSN {
				return fmt.Errorf("%w: LSN %d after %d", ErrCorrupt, lsn, prevLSN)
			}
			prevLSN = lsn
			if lsn > rec.CheckpointLSN {
				rec.Tail = append(rec.Tail, frame...)
			}
			return nil
		})
		if valid < len(body) {
			rec.TruncatedTail += int64(len(body) - valid)
			stopped = true
		}
	}
	rec.LastLSN = prevLSN
	if rec.CheckpointLSN > rec.LastLSN {
		rec.LastLSN = rec.CheckpointLSN
	}
	return rec, nil
}
