// Package repair turns the stack's bug detectors into a fixer: given a buggy
// scenario variant or litmus program plus a violating schedule, it classifies
// the §4 bug class, emits the suggested rewrite — the AHT→DBT rewrite, or the
// corrected ad hoc implementation with the misuse removed — and re-proves the
// repaired program by running the schedule explorer to exhaustion. A repair is
// only reported when the re-proof is Complete with zero violations.
//
// The classification is grounded in provenance evidence (see Blame): the
// replayed violating schedule's WAL is joined back to application intent
// through txn tags and trace annotations, so the repair names the exact
// transaction, operation, and protection it changes.
package repair

import (
	"fmt"

	"adhoctx/internal/litmus"
	"adhoctx/internal/scenario"
	"adhoctx/internal/sched"
)

// Class is a §4 bug class a violation is classified into.
type Class string

const (
	// ClassOmittedCoordination is §4.2: the guard runs in one transaction
	// and the writes in another, with no coordination (Saleor overcharging).
	ClassOmittedCoordination Class = "§4.2 omitted coordination: unprotected check"
	// ClassOmittedLocking is §4.2: a read-modify-write reads without locking
	// (the classic lost update).
	ClassOmittedLocking Class = "§4.2 omitted locking: unlocked read-modify-write"
	// ClassReadBeforeLock is §4.1.1: validation reads taken before the lock
	// and not repeated inside it (Discourse edit-post).
	ClassReadBeforeLock Class = "§4.1.1 lock misuse: read before lock"
	// ClassTTLLease is §4.1.1: the lease TTL is shorter than the critical
	// section (Mastodon issue 15645).
	ClassTTLLease Class = "§4.1.1 lock misuse: TTL lease expiry"
	// ClassValidationWindow is §4.1.2: validation and write-back in separate
	// statements (Discourse's MiniSql escape).
	ClassValidationWindow Class = "§4.1.2 non-atomic validation: validate/write window"
	// ClassCrashOrphanedLock is §3.4.2/§4.3: a crash leaves the persisted
	// lock row behind and recovery cannot tell it from a live lock.
	ClassCrashOrphanedLock Class = "§3.4.2/§4.3 failure handling: crash-orphaned lock"
)

// Strategy is the shape of the emitted rewrite.
type Strategy string

const (
	// RewriteDBT replaces the ad hoc section with one database transaction
	// using locking reads — the paper's suggested rewrite when the section
	// fits a DBT.
	RewriteDBT Strategy = "aht-to-dbt"
	// CorrectAHT keeps the ad hoc protection and removes its misuse.
	CorrectAHT Strategy = "corrected-aht"
)

// Kind says what a Fix repairs.
type Kind string

const (
	KindScenario Kind = "scenario"
	KindLitmus   Kind = "litmus"
)

// Fix is one emitted repair: the classification, the rewrite, and the
// repaired program the explorer re-proves.
type Fix struct {
	// Target is the buggy program: "<spec>/<suffix>" or "<litmus>/buggy".
	Target   string
	Kind     Kind
	Class    Class
	Strategy Strategy
	// Note is the one-line description of the rewrite.
	Note string

	// Original and Repaired are set for scenario fixes: the repaired variant
	// is expanded from Spec, the transformed scenario.Spec (which round-trips
	// through the text form, so the rewrite is itself a reviewable artifact).
	Original *scenario.Variant
	Spec     *scenario.Spec
	Repaired *scenario.Variant

	// Program is set for litmus fixes: the pair's corrected program.
	Program sched.Program
	PCTLen  int
}

// RepairedName returns the display name of the repaired program.
func (f *Fix) RepairedName() string {
	if f.Kind == KindLitmus {
		return f.Program.Name
	}
	return f.Repaired.Name
}

// Classify maps a scenario mutation to its bug class, rewrite strategy, and
// rewrite description.
func Classify(m scenario.Mutation) (Class, Strategy, string, error) {
	switch m {
	case scenario.MutOmittedCheck:
		return ClassOmittedCoordination, RewriteDBT,
			"run the guard and the writes in one database transaction with locking reads", nil
	case scenario.MutUnlockedRead:
		return ClassOmittedLocking, RewriteDBT,
			"read with FOR UPDATE so the read-modify-write holds its row locks to commit", nil
	case scenario.MutReadBeforeLock:
		return ClassReadBeforeLock, CorrectAHT,
			"re-read and validate inside the lock; drop the pre-lock read", nil
	case scenario.MutTTLLease:
		return ClassTTLLease, CorrectAHT,
			"remove the lease TTL so it cannot lapse while the section holds it", nil
	case scenario.MutValidationWindow:
		return ClassValidationWindow, CorrectAHT,
			"compile validate-and-set to one atomic compare-and-set statement", nil
	}
	return "", "", "", fmt.Errorf("repair: no repair for mutation %q", m)
}

// transformSpec emits the repaired spec: the buggy variant's mutation is
// dropped, and for RewriteDBT repairs the protection set collapses to the
// DBT rewrite. The result expands to exactly one fixed variant.
func transformSpec(v *scenario.Variant) *scenario.Spec {
	s := *v.Spec
	if v.Mutation == scenario.MutOmittedCheck || v.Mutation == scenario.MutUnlockedRead {
		s.Protections = []scenario.Protection{scenario.ProtDBT}
	} else {
		s.Protections = []scenario.Protection{v.Protect}
	}
	s.Mutations = nil
	return &s
}

// ForVariant classifies a buggy scenario variant and emits its repair: a
// transformed Spec whose single expanded variant is the repaired program.
func ForVariant(v *scenario.Variant) (*Fix, error) {
	if !v.Buggy {
		return nil, fmt.Errorf("repair: %s is not buggy — nothing to repair", v.Name)
	}
	class, strat, note, err := Classify(v.Mutation)
	if err != nil {
		return nil, fmt.Errorf("repair: %s: %w", v.Name, err)
	}
	spec := transformSpec(v)
	vs, err := scenario.Expand(spec)
	if err != nil {
		return nil, fmt.Errorf("repair: %s: transformed spec does not expand: %w", v.Name, err)
	}
	if len(vs) != 1 || vs[0].Buggy {
		return nil, fmt.Errorf("repair: %s: transformed spec expanded to %d variants, want 1 fixed", v.Name, len(vs))
	}
	return &Fix{
		Target:   v.Name,
		Kind:     KindScenario,
		Class:    class,
		Strategy: strat,
		Note:     note,
		Original: v,
		Spec:     spec,
		Repaired: vs[0],
	}, nil
}

// litmusFixes maps each litmus pair to its classification and rewrite note.
// The repaired program is the pair's Fixed variant — the hand-written form of
// the same rewrite the scenario transformer emits mechanically.
var litmusFixes = map[string]struct {
	class    Class
	strategy Strategy
	note     string
}{
	"saleor-capture": {ClassOmittedCoordination, RewriteDBT,
		"run the total check and the capture increment in one transaction with a locking read"},
	"engine-lost-update": {ClassOmittedLocking, RewriteDBT,
		"read the balance with FOR UPDATE inside the deposit transaction"},
	"discourse-edit": {ClassReadBeforeLock, CorrectAHT,
		"re-read and validate the post content inside the post lock"},
	"mastodon-ttl": {ClassTTLLease, CorrectAHT,
		"remove the lease TTL so it cannot lapse while the delete section holds it"},
	"broadleaf-dblock": {ClassCrashOrphanedLock, CorrectAHT,
		"stamp each boot with a fresh boot ID so orphaned lock rows read as stale and are taken over"},
	"occ-write-skew": {ClassValidationWindow, CorrectAHT,
		"run reads, check, and write as one engine OCC transaction so backward validation covers the full read set"},
}

// ForLitmus classifies a litmus pair's buggy program and emits its repair.
func ForLitmus(p litmus.Pair) (*Fix, error) {
	lf, ok := litmusFixes[p.Name]
	if !ok {
		return nil, fmt.Errorf("repair: no repair known for litmus %q", p.Name)
	}
	return &Fix{
		Target:   p.Name + "/buggy",
		Kind:     KindLitmus,
		Class:    lf.class,
		Strategy: lf.strategy,
		Note:     lf.note,
		Program:  p.Fixed,
		PCTLen:   p.PCTLen,
	}, nil
}

// Prove re-proves a fix: the repaired program is explored by bounded-
// exhaustive DFS and must complete the space with zero violations. The
// report is returned alongside any failure so callers can show the stats.
func Prove(fix *Fix) (*sched.Report, error) {
	var ex *sched.Explorer
	if fix.Kind == KindLitmus {
		ex = &sched.Explorer{Prog: fix.Program, PCTLen: fix.PCTLen}
	} else {
		ex = scenario.Explorer(fix.Repaired)
	}
	name := fix.RepairedName()
	rep, err := ex.ExploreDFS()
	if err != nil {
		return nil, fmt.Errorf("repair: prove %s: %w", name, err)
	}
	if rep.Violation != nil {
		return rep, fmt.Errorf("repair: %s still violates after %d schedules: %v",
			name, rep.Schedules, rep.Violation.Err)
	}
	if !rep.Complete {
		return rep, fmt.Errorf("repair: %s not explored to exhaustion (%d schedules, %d truncated)",
			name, rep.Schedules, rep.Truncated)
	}
	return rep, nil
}
