package repair

import (
	"reflect"
	"testing"

	"adhoctx/internal/litmus"
	"adhoctx/internal/scenario"
	"adhoctx/internal/sched"
)

// The acceptance table: every buggy program the repo can express — all 28
// buggy scenario-DSL variants and all 5 litmus buggy pairs — goes through
// the full repair pipeline: discover the violation, replay it once by its
// schedule ID, classify and emit the repair, and re-prove the repaired
// program to exhaustion with zero violations. Repaired variants shared by
// several mutations (e.g. every RewriteDBT repair of one spec lands on
// "<spec>/dbt") are proven once.

// expectedBuggyScenarios pins the family size: growing the builtin specs
// should consciously grow this number, not silently shrink coverage.
const expectedBuggyScenarios = 28

// expectedLitmusPairs pins the litmus catalog size.
const expectedLitmusPairs = 6

func TestRepairAcceptanceScenarios(t *testing.T) {
	vs, err := scenario.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	proved := map[string]bool{}
	buggy := 0
	for _, v := range vs {
		if !v.Buggy {
			continue
		}
		buggy++
		v := v
		t.Run(v.Name, func(t *testing.T) {
			// 1. Discover: the bug must show within the spec's budget.
			rep, err := scenario.ExploreDFS(v)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violation == nil {
				t.Fatalf("no violation within the %d-schedule budget", v.Budget)
			}
			id := rep.Violation.ScheduleID
			if rep.Violation.MinScheduleID != "" {
				id = rep.Violation.MinScheduleID
			}

			// 2. Replay the original violation once, by schedule ID.
			rrep, err := scenario.Replay(v, id)
			if err != nil {
				t.Fatal(err)
			}
			if rrep.Diverged {
				t.Fatalf("schedule %s diverged on replay", id)
			}
			if rrep.Violation == nil {
				t.Fatalf("schedule %s did not reproduce the violation", id)
			}

			// 3. Classify and emit the repair.
			fix, err := ForVariant(v)
			if err != nil {
				t.Fatal(err)
			}

			// 4. The emitted spec is a reviewable artifact: it must
			// round-trip through the text form unchanged.
			specRoundTrips(t, fix.Spec)

			// 5. Re-prove to exhaustion (once per distinct repaired variant).
			if proved[fix.RepairedName()] {
				return
			}
			prep, err := Prove(fix)
			if err != nil {
				t.Fatal(err)
			}
			proved[fix.RepairedName()] = true
			t.Logf("%s → %s: clean after %d schedules (complete=%v)",
				v.Name, fix.RepairedName(), prep.Schedules, prep.Complete)
		})
	}
	if buggy != expectedBuggyScenarios {
		t.Errorf("family has %d buggy variants, acceptance table expects %d", buggy, expectedBuggyScenarios)
	}
}

// specRoundTrips asserts Parse∘Print identity for a repaired spec: printing
// and re-parsing reproduces the spec exactly, and the printed form is a
// fixpoint.
func specRoundTrips(t *testing.T, s *scenario.Spec) {
	t.Helper()
	text := scenario.Print(s)
	back, err := scenario.Parse(text)
	if err != nil {
		t.Fatalf("repaired spec does not re-parse: %v\n%s", err, text)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("re-parsed repaired spec invalid: %v", err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("Parse(Print(spec)) != spec for repaired %q:\ngot  %#v\nwant %#v", s.Name, back, s)
	}
	if again := scenario.Print(back); again != text {
		t.Fatalf("Print not a fixpoint for repaired %q", s.Name)
	}
}

func TestRepairAcceptanceLitmus(t *testing.T) {
	pairs := litmus.Pairs()
	if len(pairs) != expectedLitmusPairs {
		t.Errorf("litmus catalog has %d pairs, acceptance table expects %d", len(pairs), expectedLitmusPairs)
	}
	for _, p := range pairs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ex := &sched.Explorer{Prog: p.Buggy}
			rep, err := ex.ExploreDFS()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violation == nil {
				t.Fatalf("DFS missed the %s bug", p.Class)
			}
			id := rep.Violation.ScheduleID
			if rep.Violation.MinScheduleID != "" {
				id = rep.Violation.MinScheduleID
			}
			rrep, err := ex.ReplayID(id)
			if err != nil {
				t.Fatal(err)
			}
			if rrep.Diverged || rrep.Violation == nil {
				t.Fatalf("schedule %s did not reproduce (diverged=%v)", id, rrep.Diverged)
			}

			fix, err := ForLitmus(p)
			if err != nil {
				t.Fatal(err)
			}
			prep, err := Prove(fix)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s → %s: clean after %d schedules (complete=%v)",
				fix.Target, fix.RepairedName(), prep.Schedules, prep.Complete)
		})
	}
}
