package repair

import (
	"fmt"
	"strings"

	"adhoctx/internal/provenance"
	"adhoctx/internal/scenario"
)

// Target is one invariant-target row of a blamed schedule, with the last
// transaction that wrote it in the violating run.
type Target struct {
	Table string
	PK    int64
	// Writer is the last write to the row in the recovered WAL; HasWriter is
	// false when the row was seeded but never rewritten.
	Writer    provenance.Write
	HasWriter bool
	// Step is the index of the writer's commit annotation in the replayed
	// schedule trace, -1 when the trace carries none.
	Step int
}

// Blame explains one violating schedule of a buggy variant from provenance
// evidence: the schedule is replayed with capture (scenario.ReplayProbed),
// the terminal WAL is joined to call tags, and the invariant's target rows
// are attributed to the exact transactions that last wrote them — the
// transactions the emitted repair changes.
type Blame struct {
	Fix        *Fix
	ScheduleID string
	// Violation is the oracle error the replayed schedule reproduced.
	Violation string
	Targets    []Target

	ix *provenance.Index
}

// BlameSchedule replays the violating schedule against the buggy variant and
// builds its blame. The schedule must reproduce the violation — a blame over
// a clean run would attribute nothing.
func BlameSchedule(v *scenario.Variant, scheduleID string) (*Blame, error) {
	fix, err := ForVariant(v)
	if err != nil {
		return nil, err
	}
	rep, probe, err := scenario.ReplayProbed(v, scheduleID)
	if err != nil {
		return nil, fmt.Errorf("repair: blame %s: %w", v.Name, err)
	}
	if rep.Diverged {
		return nil, fmt.Errorf("repair: blame %s: schedule %s diverged on replay", v.Name, scheduleID)
	}
	if rep.Violation == nil {
		return nil, fmt.Errorf("repair: blame %s: schedule %s did not reproduce a violation", v.Name, scheduleID)
	}

	ix := provenance.FromRaw(probe.WAL)
	ix.AttachTags(probe.Tags)
	b := &Blame{
		Fix:        fix,
		ScheduleID: scheduleID,
		Violation:  rep.Violation.Err.Error(),
		ix:         ix,
	}
	for _, key := range targetRows(v.Spec, probe, ix, b.Violation) {
		t := Target{Table: key.table, PK: key.pk, Step: -1}
		if w, ok := ix.LastWriter(key.table, key.pk); ok {
			t.Writer, t.HasWriter = w, true
			t.Step = provenance.CommitStep(rep.Violation.Steps, w.TxnID)
		}
		b.Targets = append(b.Targets, t)
	}
	return b, nil
}

type blameKey struct {
	table string
	pk    int64
}

// targetRows resolves which rows a violation message implicates. The oracle
// prefixes invariant failures with "invariant <i>", which selects that
// invariant's rows; any other violation (serializability cycle, unexpected
// call error) falls back to every invariant's rows.
func targetRows(s *scenario.Spec, probe *scenario.Probe, ix *provenance.Index, violation string) []blameKey {
	invs := s.Invariants
	var idx int
	if _, err := fmt.Sscanf(violation, "invariant %d", &idx); err == nil && idx >= 0 && idx < len(invs) {
		invs = invs[idx : idx+1]
	}
	tables := map[string]bool{}
	var keys []blameKey
	seen := map[blameKey]bool{}
	add := func(k blameKey) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, inv := range invs {
		if inv.Kind == scenario.InvApplied {
			// The applied invariant audits one seeded row — blame exactly it.
			if pks := probe.PKs[inv.Entity]; inv.Row < len(pks) {
				add(blameKey{inv.Entity, pks[inv.Row]})
				continue
			}
		}
		tables[inv.Entity] = true
		if inv.Child != "" {
			tables[inv.Child] = true
		}
	}
	// Remaining invariants implicate whole tables: every row of the table
	// present in the recovered log, in the index's stable order.
	for _, r := range ix.Rows() {
		if tables[r.Table] {
			add(blameKey{r.Table, r.PK})
		}
	}
	return keys
}

// Format renders the blame as stable text: classification, the reproduced
// violation, each target row's last writer with its trace commit step, and
// the repair the classification emits.
func (b *Blame) Format() string {
	var sb strings.Builder
	fix := b.Fix
	fmt.Fprintf(&sb, "blame %s\n", fix.Target)
	fmt.Fprintf(&sb, "  schedule: %s\n", b.ScheduleID)
	prot := "none"
	if fix.Original != nil && fix.Original.Protect != "" {
		prot = string(fix.Original.Protect)
	}
	fmt.Fprintf(&sb, "  protection: %s\n", prot)
	if fix.Original != nil && fix.Original.Mutation != "" {
		fmt.Fprintf(&sb, "  mutation: %s\n", fix.Original.Mutation)
	}
	fmt.Fprintf(&sb, "  class: %s\n", fix.Class)
	fmt.Fprintf(&sb, "  violation: %s\n", b.Violation)
	for _, t := range b.Targets {
		fmt.Fprintf(&sb, "  target %s:%d\n", t.Table, t.PK)
		if !t.HasWriter {
			sb.WriteString("    no write in the recovered log\n")
			continue
		}
		fmt.Fprintf(&sb, "    last writer: %s\n", b.ix.Describe(t.Writer))
		if t.Step >= 0 {
			fmt.Fprintf(&sb, "    commit step: %d\n", t.Step)
		}
	}
	fmt.Fprintf(&sb, "  repair (%s): %s\n", fix.Strategy, fix.Note)
	fmt.Fprintf(&sb, "  re-prove: %s by exhaustive DFS\n", fix.RepairedName())
	return sb.String()
}
