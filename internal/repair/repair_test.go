package repair

import (
	"strings"
	"testing"

	"adhoctx/internal/litmus"
	"adhoctx/internal/scenario"
	"adhoctx/internal/sched"
)

// TestClassify pins the mutation → (class, strategy) map: omitted checks and
// unlocked reads get the DBT rewrite, lock/validation misuses get the
// corrected ad hoc implementation.
func TestClassify(t *testing.T) {
	cases := []struct {
		m     scenario.Mutation
		class Class
		strat Strategy
	}{
		{scenario.MutOmittedCheck, ClassOmittedCoordination, RewriteDBT},
		{scenario.MutUnlockedRead, ClassOmittedLocking, RewriteDBT},
		{scenario.MutReadBeforeLock, ClassReadBeforeLock, CorrectAHT},
		{scenario.MutTTLLease, ClassTTLLease, CorrectAHT},
		{scenario.MutValidationWindow, ClassValidationWindow, CorrectAHT},
	}
	for _, c := range cases {
		class, strat, note, err := Classify(c.m)
		if err != nil {
			t.Fatalf("%s: %v", c.m, err)
		}
		if class != c.class || strat != c.strat {
			t.Errorf("%s: got (%s, %s), want (%s, %s)", c.m, class, strat, c.class, c.strat)
		}
		if note == "" {
			t.Errorf("%s: empty rewrite note", c.m)
		}
	}
	if _, _, _, err := Classify("no-such-mutation"); err == nil {
		t.Fatal("unknown mutation classified")
	}
}

// TestForVariantShapes checks the transformed spec per strategy: RewriteDBT
// collapses the protection set to dbt, CorrectAHT keeps the protection, and
// both drop every mutation and expand to exactly one fixed variant.
func TestForVariantShapes(t *testing.T) {
	vs, err := scenario.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Strategy]bool{}
	for _, v := range vs {
		if !v.Buggy {
			if _, err := ForVariant(v); err == nil {
				t.Fatalf("%s: fixed variant repaired", v.Name)
			}
			continue
		}
		fix, err := ForVariant(v)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		seen[fix.Strategy] = true
		if fix.Target != v.Name || fix.Kind != KindScenario {
			t.Fatalf("%s: bad fix identity %q/%q", v.Name, fix.Target, fix.Kind)
		}
		if len(fix.Spec.Mutations) != 0 {
			t.Fatalf("%s: repaired spec keeps mutations %v", v.Name, fix.Spec.Mutations)
		}
		if len(fix.Spec.Protections) != 1 {
			t.Fatalf("%s: repaired spec has %d protections", v.Name, len(fix.Spec.Protections))
		}
		want := v.Protect
		if fix.Strategy == RewriteDBT {
			want = scenario.ProtDBT
		}
		if fix.Spec.Protections[0] != want {
			t.Fatalf("%s: repaired protection %s, want %s", v.Name, fix.Spec.Protections[0], want)
		}
		if fix.Repaired.Buggy {
			t.Fatalf("%s: repaired variant still buggy", v.Name)
		}
		if fix.RepairedName() != scenario.VariantName(v.Spec.Name, want, "") {
			t.Fatalf("%s: repaired name %s", v.Name, fix.RepairedName())
		}
	}
	if !seen[RewriteDBT] || !seen[CorrectAHT] {
		t.Fatalf("family did not exercise both strategies: %v", seen)
	}
}

// TestForLitmusCoversEveryPair: every litmus pair classifies, and the
// repaired program is the pair's fixed variant.
func TestForLitmusCoversEveryPair(t *testing.T) {
	for _, p := range litmus.Pairs() {
		fix, err := ForLitmus(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if fix.Kind != KindLitmus || fix.Target != p.Name+"/buggy" {
			t.Fatalf("%s: bad fix identity %q/%q", p.Name, fix.Target, fix.Kind)
		}
		if fix.Program.Name != p.Fixed.Name {
			t.Fatalf("%s: repaired program %q, want %q", p.Name, fix.Program.Name, p.Fixed.Name)
		}
		if fix.Class == "" || fix.Note == "" {
			t.Fatalf("%s: missing class or note", p.Name)
		}
	}
	if _, err := ForLitmus(litmus.Pair{Name: "no-such-pair"}); err == nil {
		t.Fatal("unknown pair repaired")
	}
}

// TestProveRejectsBrokenRepair: Prove refuses a "repair" that still
// violates — a fix pointing at the buggy program itself must not prove.
func TestProveRejectsBrokenRepair(t *testing.T) {
	p, ok := litmus.Find("saleor-capture")
	if !ok {
		t.Fatal("saleor-capture missing")
	}
	fix, err := ForLitmus(p)
	if err != nil {
		t.Fatal(err)
	}
	fix.Program = p.Buggy // sabotage: the "repair" is the bug
	rep, err := Prove(fix)
	if err == nil {
		t.Fatal("Prove accepted a still-buggy repair")
	}
	if rep == nil || rep.Violation == nil {
		t.Fatal("Prove returned no violating report for the bad repair")
	}
}

// TestBlameNamesTheRepairedTxn is the acceptance criterion for -blame: on
// the pre-repair violating schedule, the blame names the exact transaction
// (with its op tag and the variant's protection) that the repair changes,
// resolved to a commit step of the replayed trace.
func TestBlameNamesTheRepairedTxn(t *testing.T) {
	vs, err := scenario.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := scenario.FindVariant(vs, "saleor-capture/mem+read-before-lock")
	if !ok {
		for _, cand := range vs {
			if cand.Buggy {
				v = cand
				break
			}
		}
	}
	rep, err := scenario.ExploreDFS(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatalf("%s: no violation to blame", v.Name)
	}
	id := rep.Violation.ScheduleID
	if rep.Violation.MinScheduleID != "" {
		id = rep.Violation.MinScheduleID
	}

	b, err := BlameSchedule(v, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Targets) == 0 {
		t.Fatal("blame resolved no target rows")
	}
	named := false
	for _, tg := range b.Targets {
		if tg.HasWriter && tg.Step >= 0 {
			named = true
		}
	}
	if !named {
		t.Fatal("no target writer resolved to a trace commit step")
	}

	out := b.Format()
	for _, want := range []string{
		"blame " + v.Name,
		"schedule: " + id,
		"protection: " + string(v.Protect),
		"mutation: " + string(v.Mutation),
		"violation: ",
		"last writer: ",
		"tag=",
		"commit step: ",
		"repair (" + string(b.Fix.Strategy) + "): ",
		"re-prove: " + b.Fix.RepairedName(),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("blame output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: the same schedule blames identically.
	b2, err := BlameSchedule(v, id)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Format() != out {
		t.Fatal("blame output not deterministic across replays")
	}
}

// TestBlameRejectsCleanSchedule: blaming a schedule that does not violate is
// an error, not an empty blame.
func TestBlameRejectsCleanSchedule(t *testing.T) {
	vs, err := scenario.ExpandAll()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := scenario.FindVariant(vs, "saleor-capture/mem+read-before-lock")
	if !ok {
		t.Skip("variant renamed; the clean-schedule contract is covered elsewhere")
	}
	// The default-pick schedule (no recorded decisions) runs near-serially
	// and is clean: the read-before-lock bug needs interleaving.
	clean := sched.EncodeSchedule(2, nil)
	if _, err := BlameSchedule(v, clean); err == nil {
		t.Fatalf("%s: blame of a clean schedule succeeded", v.Name)
	}
}
