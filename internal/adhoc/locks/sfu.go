package locks

import (
	"fmt"
	"strconv"

	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
)

// SFULocker reuses the database's own row locks through SELECT ... FOR
// UPDATE, the primitive Spree, Saleor and Redmine build their pessimistic ad
// hoc transactions on (§3.2.1). The lock is the X lock on a designated row,
// held for as long as the enclosing database transaction stays open: Acquire
// opens a transaction and locks the row; Release commits it.
//
// Spree's misuse (§4.1.1, issue 10697) is reproduced by OutsideTxn: the
// SELECT FOR UPDATE auto-commits, so the row lock is released the moment the
// statement returns and the "critical section" runs unprotected.
type SFULocker struct {
	// Eng is the database.
	Eng *engine.Engine
	// Table holds the lockable rows; keys are row primary keys rendered
	// as decimal strings.
	Table string
	// Iso is the isolation level of the lock-holding transaction
	// (default: the dialect default — the paper notes a weak level
	// suffices because only the lock matters).
	Iso engine.Isolation
	// OutsideTxn reproduces the Spree bug: the locking statement runs in
	// its own auto-committed transaction.
	OutsideTxn bool
}

// Name implements core.Locker.
func (l *SFULocker) Name() string { return "SFU" }

// EnsureRow makes sure the lockable row for pk exists. Applications lock
// real entity rows; benches and tests use this to set up.
func (l *SFULocker) EnsureRow(pk int64) error {
	err := l.Eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		row, err := t.SelectOne(l.Table, storage.ByPK(pk))
		if err != nil || row != nil {
			return err
		}
		_, err = t.Insert(l.Table, map[string]storage.Value{"id": pk})
		return err
	})
	return err
}

// Acquire implements core.Locker. key must be a decimal row id.
func (l *SFULocker) Acquire(key string) (core.Release, error) {
	pk, err := strconv.ParseInt(key, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("sfu lock: key %q is not a row id: %v", key, err)
	}

	if l.OutsideTxn {
		// The buggy shape: the locking read auto-commits, releasing the
		// row lock immediately. Release is a no-op on a lock that is
		// already gone.
		err := l.Eng.Run(l.Iso, func(t *engine.Txn) error {
			_, err := t.SelectOne(l.Table, storage.ByPK(pk), engine.ForUpdate)
			return err
		})
		if err != nil {
			return nil, err
		}
		return func() error { return nil }, nil
	}

	txn := l.Eng.Begin(l.Iso)
	if _, err := txn.SelectOne(l.Table, storage.ByPK(pk), engine.ForUpdate); err != nil {
		if !txn.Done() {
			_ = txn.Rollback()
		}
		return nil, err
	}
	return func() error { return txn.Commit() }, nil
}

// LockTxn acquires the row lock inside an existing transaction — the correct
// usage pattern where the critical operations share the locking transaction
// (Saleor's stock allocation, §3.2.1).
func (l *SFULocker) LockTxn(t *engine.Txn, pk int64) error {
	_, err := t.SelectOne(l.Table, storage.ByPK(pk), engine.ForUpdate)
	return err
}
