package locks

import (
	"errors"
	"fmt"
	"time"

	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
)

// DBLockTable is the schema name used by DBLocker.
const DBLockTable = "adhoc_locks"

// DBLocker stores lock state in a database table — Broadleaf's persisted
// lock (§3.2.1). Acquire inserts a row for the key inside a durable
// transaction, which is why Figure 2 shows this primitive an order of
// magnitude slower than everything else: every acquisition pays a log
// flush.
//
// Because rows survive application crashes, Broadleaf stamps each lock with
// a boot-time UUID; locks from previous boots are treated as stale and taken
// over (§3.4.2). BootID carries that token.
type DBLocker struct {
	Eng *engine.Engine
	// BootID distinguishes this process boot; locks carrying a different
	// BootID are stale leftovers from before a crash.
	BootID string
	// Owner names this locker instance within the current boot.
	Owner string
	// RetryInterval is the contention poll interval (default 500µs).
	RetryInterval time.Duration
	// Timeout bounds the acquisition wait (0 = forever).
	Timeout time.Duration
	// Clock for waiting; nil = wall clock.
	Clock sim.Clock
}

// SetupDBLockTable creates the lock table on an engine. Call once at boot.
func SetupDBLockTable(eng *engine.Engine) {
	eng.CreateTable(storage.NewSchema(DBLockTable,
		storage.Column{Name: "lock_key", Type: storage.TString},
		storage.Column{Name: "owner", Type: storage.TString},
		storage.Column{Name: "boot_id", Type: storage.TString},
	), "lock_key")
}

// Name implements core.Locker.
func (l *DBLocker) Name() string { return "DB" }

func (l *DBLocker) clock() sim.Clock {
	if l.Clock != nil {
		return l.Clock
	}
	return sim.RealClock{}
}

func (l *DBLocker) retryInterval() time.Duration {
	if l.RetryInterval > 0 {
		return l.RetryInterval
	}
	return 500 * time.Microsecond
}

var errLockHeld = errors.New("dblock: held")

// Acquire implements core.Locker.
func (l *DBLocker) Acquire(key string) (core.Release, error) {
	deadline := time.Time{}
	if l.Timeout > 0 {
		deadline = l.clock().Now().Add(l.Timeout)
	}
	for {
		err := l.tryOnce(key)
		if err == nil {
			return func() error { return l.release(key) }, nil
		}
		if !errors.Is(err, errLockHeld) && !engine.IsRetryable(err) {
			return nil, err
		}
		if !deadline.IsZero() && !l.clock().Now().Before(deadline) {
			return nil, fmt.Errorf("db lock %q: %w", key, core.ErrLockUnavailable)
		}
		l.clock().Sleep(l.retryInterval())
	}
}

// tryOnce attempts one check-and-insert transaction: SELECT the lock row
// FOR UPDATE, then INSERT (absent), take over (stale boot), or fail (held).
// The table has no unique constraint on lock_key (neither does Broadleaf's),
// so after an insert a second transaction verifies we won any insert race:
// the row with the smallest id is the lock holder.
func (l *DBLocker) tryOnce(key string) error {
	var insertedPK int64
	err := l.Eng.Run(engine.ReadCommitted, func(t *engine.Txn) error {
		row, err := t.SelectOne(DBLockTable, storage.Eq{Col: "lock_key", Val: key}, engine.ForUpdate)
		if err != nil {
			return err
		}
		if row == nil {
			insertedPK, err = t.Insert(DBLockTable, map[string]storage.Value{
				"lock_key": key, "owner": l.Owner, "boot_id": l.BootID,
			})
			return err
		}
		schema := l.Eng.Schema(DBLockTable)
		if row.Get(schema, "boot_id") != l.BootID {
			// Stale lock from a previous boot: take it over (§3.4.2).
			_, err := t.Update(DBLockTable, storage.ByPK(row.PK()), map[string]storage.Value{
				"owner": l.Owner, "boot_id": l.BootID,
			})
			return err
		}
		return errLockHeld
	})
	if err != nil || insertedPK == 0 {
		return err
	}
	return l.verifyInsert(key, insertedPK)
}

// verifyInsert resolves insert races: the smallest-id row for the key wins;
// losers delete their row and report the lock as held. The scan is a
// locking read so it waits out concurrent uncommitted inserts instead of
// missing them; the loser's self-delete must commit, so the verdict is
// carried out of the transaction rather than returned as its error.
func (l *DBLocker) verifyInsert(key string, mine int64) error {
	lost := false
	err := l.Eng.Run(engine.ReadCommitted, func(t *engine.Txn) error {
		rows, err := t.Select(DBLockTable, storage.Eq{Col: "lock_key", Val: key}, engine.ForUpdate)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if row.PK() < mine {
				lost = true
				_, err := t.Delete(DBLockTable, storage.ByPK(mine))
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if lost {
		return errLockHeld
	}
	return nil
}

// release deletes the lock row if we still own it.
func (l *DBLocker) release(key string) error {
	return l.Eng.Run(engine.ReadCommitted, func(t *engine.Txn) error {
		schema := l.Eng.Schema(DBLockTable)
		row, err := t.SelectOne(DBLockTable, storage.Eq{Col: "lock_key", Val: key}, engine.ForUpdate)
		if err != nil {
			return err
		}
		if row == nil || row.Get(schema, "owner") != l.Owner || row.Get(schema, "boot_id") != l.BootID {
			return nil // not ours (crashed boot, takeover)
		}
		_, err = t.Delete(DBLockTable, storage.ByPK(row.PK()))
		return err
	})
}

// NewBootID returns a unique boot token. Broadleaf uses a UUID; a
// process-unique counter rendered with a time component is equivalent for
// distinguishing boots.
func NewBootID(clock sim.Clock) string {
	if clock == nil {
		clock = sim.RealClock{}
	}
	return fmt.Sprintf("boot-%d", clock.Now().UnixNano())
}
