package locks

import (
	"fmt"
	"sync"
	"time"

	"adhoctx/internal/core"
	"adhoctx/internal/kv"
	"adhoctx/internal/sim"
)

// SetNXLocker is the single-round-trip Redis lease lock: SET key token NX PX
// ttl (Mastodon, Saleor — §3.2.1, Figure 1b). Acquisition costs exactly one
// KV round trip when uncontended; contention polls with a backoff.
//
// The TTL gives the lock lease semantics. Mastodon's bug (§4.1.1, issue
// 15645) is that nobody checks whether the lease expired before the critical
// section finished: a slow holder silently loses the lock and a second
// holder enters. The locker faithfully allows this; the release handle of
// the fixed variant (CheckTokenOnRelease) at least refuses to delete a lock
// it no longer owns, and Expired lets careful callers detect the condition.
type SetNXLocker struct {
	// Store is the KV store holding lock entries.
	Store *kv.Store
	// TTL auto-expires lock entries; 0 disables expiry.
	TTL time.Duration
	// Token identifies this locker instance (a worker/process identity).
	Token string
	// RetryInterval is the contention poll interval (default 200µs).
	RetryInterval time.Duration
	// Timeout bounds the acquisition wait (0 = forever).
	Timeout time.Duration
	// CheckTokenOnRelease makes release verify ownership before deleting
	// (the fixed variant); the production code deletes unconditionally.
	CheckTokenOnRelease bool
	// Reentrant allows nested acquisition of a held key by the same
	// locker instance, Saleor-style.
	Reentrant bool
	// Clock for waiting; nil = wall clock.
	Clock sim.Clock

	mu    sync.Mutex
	depth map[string]int // re-entrancy depths
}

// Name implements core.Locker.
func (l *SetNXLocker) Name() string { return "KV-SETNX" }

func (l *SetNXLocker) clock() sim.Clock {
	if l.Clock != nil {
		return l.Clock
	}
	return sim.RealClock{}
}

func (l *SetNXLocker) retryInterval() time.Duration {
	if l.RetryInterval > 0 {
		return l.RetryInterval
	}
	return 200 * time.Microsecond
}

// Acquire implements core.Locker.
func (l *SetNXLocker) Acquire(key string) (core.Release, error) {
	if l.Reentrant && l.enterReentrant(key) {
		return func() error { l.leaveReentrant(key); return nil }, nil
	}
	conn := l.Store.Conn()
	deadline := time.Time{}
	if l.Timeout > 0 {
		deadline = l.clock().Now().Add(l.Timeout)
	}
	for {
		if conn.SetNXPX(key, l.Token, l.TTL) {
			if l.Reentrant {
				l.setDepth(key, 1)
			}
			return func() error { return l.release(conn, key) }, nil
		}
		if !deadline.IsZero() && !l.clock().Now().Before(deadline) {
			return nil, fmt.Errorf("kv lock %q: %w", key, core.ErrLockUnavailable)
		}
		l.clock().Sleep(l.retryInterval())
	}
}

// TryAcquire implements core.TryLocker.
func (l *SetNXLocker) TryAcquire(key string) (core.Release, error) {
	if l.Reentrant && l.enterReentrant(key) {
		return func() error { l.leaveReentrant(key); return nil }, nil
	}
	conn := l.Store.Conn()
	if !conn.SetNXPX(key, l.Token, l.TTL) {
		return nil, core.ErrLockUnavailable
	}
	if l.Reentrant {
		l.setDepth(key, 1)
	}
	return func() error { return l.release(conn, key) }, nil
}

func (l *SetNXLocker) release(conn *kv.Conn, key string) error {
	if l.Reentrant {
		l.mu.Lock()
		delete(l.depth, key)
		l.mu.Unlock()
	}
	if l.CheckTokenOnRelease {
		if v, ok := conn.Get(key); !ok || v != l.Token {
			// The lease expired and possibly belongs to someone else
			// now; deleting it would release *their* lock.
			return nil
		}
	}
	conn.Del(key)
	return nil
}

// Expired reports whether the lease for key no longer belongs to this
// locker — the check Mastodon forgot.
func (l *SetNXLocker) Expired(key string) bool {
	v, ok := l.Store.Conn().Get(key)
	return !ok || v != l.Token
}

func (l *SetNXLocker) enterReentrant(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.depth == nil {
		l.depth = make(map[string]int)
	}
	if l.depth[key] > 0 {
		l.depth[key]++
		return true
	}
	return false
}

func (l *SetNXLocker) leaveReentrant(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.depth[key] > 0 {
		l.depth[key]--
	}
}

func (l *SetNXLocker) setDepth(key string, d int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.depth == nil {
		l.depth = make(map[string]int)
	}
	l.depth[key] = d
}

// MultiLocker is Discourse's Redis lock (§3.2.1): an optimistic
// check-and-set built from WATCH, GET, MULTI, SET and EXEC. Acquisition
// costs seven round trips where SETNX costs one — the latency gap Figure 2
// quantifies (and the report Discourse acknowledged, "A more efficient
// Redis lock").
type MultiLocker struct {
	Store         *kv.Store
	TTL           time.Duration
	Token         string
	RetryInterval time.Duration
	Timeout       time.Duration
	Clock         sim.Clock
}

// Name implements core.Locker.
func (l *MultiLocker) Name() string { return "KV-MULTI" }

func (l *MultiLocker) clock() sim.Clock {
	if l.Clock != nil {
		return l.Clock
	}
	return sim.RealClock{}
}

func (l *MultiLocker) retryInterval() time.Duration {
	if l.RetryInterval > 0 {
		return l.RetryInterval
	}
	return 200 * time.Microsecond
}

// Acquire implements core.Locker. One attempt issues:
// EXISTS, WATCH, GET, MULTI, SET, EXPIRE, EXEC — 7 round trips.
func (l *MultiLocker) Acquire(key string) (core.Release, error) {
	conn := l.Store.Conn()
	deadline := time.Time{}
	if l.Timeout > 0 {
		deadline = l.clock().Now().Add(l.Timeout)
	}
	for {
		if l.attempt(conn, key) {
			return func() error {
				conn.Del(key)
				return nil
			}, nil
		}
		if !deadline.IsZero() && !l.clock().Now().Before(deadline) {
			return nil, fmt.Errorf("kv lock %q: %w", key, core.ErrLockUnavailable)
		}
		l.clock().Sleep(l.retryInterval())
	}
}

// attempt runs one optimistic check-and-set cycle.
func (l *MultiLocker) attempt(conn *kv.Conn, key string) bool {
	if conn.Exists(key) { // fast-path check
		return false
	}
	if err := conn.Watch(key); err != nil {
		return false
	}
	if _, held := conn.Get(key); held {
		conn.Unwatch()
		return false
	}
	if err := conn.Multi(); err != nil {
		conn.Discard()
		return false
	}
	conn.Set(key, l.Token)
	ttl := l.TTL
	if ttl <= 0 {
		ttl = time.Hour
	}
	conn.Expire(key, ttl)
	// The WATCH→MULTI→EXEC sequencing above is correct by construction, so
	// Exec can only fail the optimistic check, never the protocol.
	ok, err := conn.Exec()
	return err == nil && ok
}
