package locks

import (
	"errors"
	"sync"
	"testing"
	"time"

	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/kv"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
)

// exerciseMutualExclusion hammers one key and checks the critical-section
// invariant.
func exerciseMutualExclusion(t *testing.T, l core.Locker, workers, iters int) {
	t.Helper()
	var mu sync.Mutex
	inCS, maxCS := 0, 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rel, err := l.Acquire("hot")
				if err != nil {
					t.Errorf("%s acquire: %v", l.Name(), err)
					return
				}
				mu.Lock()
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				mu.Unlock()
				mu.Lock()
				inCS--
				mu.Unlock()
				if err := rel(); err != nil {
					t.Errorf("%s release: %v", l.Name(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if maxCS > 1 {
		t.Fatalf("%s: %d holders in the critical section", l.Name(), maxCS)
	}
}

func TestMutualExclusionAcrossImplementations(t *testing.T) {
	eng := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: 10 * time.Second})
	SetupDBLockTable(eng)
	sfuEng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 10 * time.Second})
	sfu := &SFULocker{Eng: sfuEng, Table: "orders"}
	sfuEng.CreateTable(newSchema("orders"))
	if err := sfu.EnsureRow(1); err != nil {
		t.Fatal(err)
	}

	store := kv.NewStore(nil, sim.Latency{})
	impls := []core.Locker{
		NewSyncLocker(),
		NewMemLocker(),
		NewLRULocker(1024, false),
		&SetNXLocker{Store: store, Token: "t1", RetryInterval: 50 * time.Microsecond},
		&MultiLocker{Store: store, Token: "t2", RetryInterval: 50 * time.Microsecond},
		&DBLocker{Eng: eng, BootID: "boot-1", Owner: "w", RetryInterval: 50 * time.Microsecond},
	}
	for _, impl := range impls {
		impl := impl
		t.Run(impl.Name(), func(t *testing.T) {
			exerciseMutualExclusion(t, impl, 6, 15)
		})
	}
	t.Run("SFU", func(t *testing.T) {
		// SFU keys are row ids; use the prepared row.
		sfuAdapter := lockerFunc{
			name: "SFU",
			acquire: func(string) (core.Release, error) {
				return sfu.Acquire("1")
			},
		}
		exerciseMutualExclusion(t, sfuAdapter, 4, 10)
	})
}

type lockerFunc struct {
	name    string
	acquire func(string) (core.Release, error)
}

func (l lockerFunc) Name() string                           { return l.name }
func (l lockerFunc) Acquire(k string) (core.Release, error) { return l.acquire(k) }

// newSchema builds a minimal lockable-row schema for SFU tests.
func newSchema(table string) *storage.Schema { return storage.NewSchema(table) }

func TestMemLockerEntriesReclaimed(t *testing.T) {
	l := NewMemLocker()
	for i := 0; i < 100; i++ {
		rel, err := l.Acquire(string(rune('a' + i%26)))
		if err != nil {
			t.Fatal(err)
		}
		if err := rel(); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Size(); got != 0 {
		t.Fatalf("entries leaked: %d", got)
	}
}

func TestMemLockerTryAcquire(t *testing.T) {
	l := NewMemLocker()
	rel, err := l.TryAcquire("k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.TryAcquire("k"); !errors.Is(err, core.ErrLockUnavailable) {
		t.Fatalf("second TryAcquire = %v", err)
	}
	if err := rel(); err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got != 0 {
		t.Fatalf("entries leaked after failed try: %d", got)
	}
	rel2, err := l.TryAcquire("k")
	if err != nil {
		t.Fatal(err)
	}
	_ = rel2()
}

// TestLRULockerBuggyEvictionBreaksExclusion reproduces the Broadleaf defect
// (§4.1.1): filling the table past capacity evicts a held lock, and a second
// acquirer of the same key succeeds while the first still holds it.
func TestLRULockerBuggyEvictionBreaksExclusion(t *testing.T) {
	l := NewLRULocker(2, true)
	relHeld, err := l.Acquire("order:1")
	if err != nil {
		t.Fatal(err)
	}
	// Flood the table so order:1 falls off the LRU tail.
	for _, k := range []string{"a", "b", "c"} {
		rel, err := l.Acquire(k)
		if err != nil {
			t.Fatal(err)
		}
		_ = rel()
	}
	_, evictedHeld := l.Stats()
	if evictedHeld == 0 {
		t.Fatal("held lock was not evicted")
	}

	// Mutual exclusion is broken: a second Acquire of order:1 succeeds.
	done := make(chan core.Release, 1)
	go func() {
		rel, err := l.Acquire("order:1")
		if err != nil {
			t.Error(err)
		}
		done <- rel
	}()
	select {
	case rel := <-done:
		_ = rel()
	case <-time.After(500 * time.Millisecond):
		t.Fatal("second acquire blocked; eviction bug not reproduced")
	}
	_ = relHeld()
}

// TestLRULockerFixedKeepsHeldLocks: the fixed variant exceeds capacity
// rather than evicting a held lock.
func TestLRULockerFixedKeepsHeldLocks(t *testing.T) {
	l := NewLRULocker(2, false)
	relHeld, err := l.Acquire("order:1")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		rel, err := l.Acquire(k)
		if err != nil {
			t.Fatal(err)
		}
		_ = rel()
	}
	_, evictedHeld := l.Stats()
	if evictedHeld != 0 {
		t.Fatalf("fixed variant evicted %d held locks", evictedHeld)
	}

	blocked := make(chan struct{})
	go func() {
		rel, err := l.Acquire("order:1")
		if err == nil {
			close(blocked)
			_ = rel()
		}
	}()
	select {
	case <-blocked:
		t.Fatal("second acquire succeeded while lock held")
	case <-time.After(100 * time.Millisecond):
	}
	_ = relHeld()
	select {
	case <-blocked:
	case <-time.After(time.Second):
		t.Fatal("waiter never granted after release")
	}
}

func TestBuggySyncLockerProvidesNoExclusion(t *testing.T) {
	l := BuggySyncLocker{}
	rel1, err := l.Acquire("k")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		rel2, err := l.Acquire("k")
		if err != nil {
			t.Error(err)
		}
		_ = rel2()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(200 * time.Millisecond):
		t.Fatal("buggy sync locker blocked — it should never block")
	}
	_ = rel1()
}

// TestSetNXLeaseExpiryBug reproduces Mastodon issue 15645 (§4.1.1): the TTL
// expires mid-critical-section and a second worker acquires the same lock.
func TestSetNXLeaseExpiryBug(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	store := kv.NewStore(clock, sim.Latency{})
	w1 := &SetNXLocker{Store: store, Token: "w1", TTL: 5 * time.Second, Clock: clock}
	w2 := &SetNXLocker{Store: store, Token: "w2", TTL: 5 * time.Second, Clock: clock}

	rel1, err := w1.Acquire("post:9")
	if err != nil {
		t.Fatal(err)
	}
	if w1.Expired("post:9") {
		t.Fatal("fresh lease reported expired")
	}
	// The critical section dawdles past the TTL.
	clock.Advance(6 * time.Second)
	if !w1.Expired("post:9") {
		t.Fatal("lease should have expired")
	}
	rel2, err := w2.TryAcquire("post:9")
	if err != nil {
		t.Fatalf("second worker should acquire the expired lease: %v", err)
	}
	// w1 releases "its" lock — production code deletes unconditionally,
	// silently releasing w2's lock too.
	if err := rel1(); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Conn().Get("post:9"); ok {
		t.Fatal("unconditional delete should have removed w2's lock")
	}
	_ = rel2()
}

// TestSetNXCheckedReleaseKeepsOthersLock: the fixed variant refuses to
// delete a lock it no longer owns.
func TestSetNXCheckedReleaseKeepsOthersLock(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	store := kv.NewStore(clock, sim.Latency{})
	w1 := &SetNXLocker{Store: store, Token: "w1", TTL: time.Second, Clock: clock, CheckTokenOnRelease: true}
	w2 := &SetNXLocker{Store: store, Token: "w2", TTL: time.Minute, Clock: clock}

	rel1, err := w1.Acquire("k")
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second) // w1's lease expires
	rel2, err := w2.TryAcquire("k")
	if err != nil {
		t.Fatal(err)
	}
	if err := rel1(); err != nil {
		t.Fatal(err)
	}
	if v, ok := store.Conn().Get("k"); !ok || v != "w2" {
		t.Fatalf("w2's lock disturbed: %q, %v", v, ok)
	}
	_ = rel2()
}

func TestSetNXReentrant(t *testing.T) {
	store := kv.NewStore(nil, sim.Latency{})
	l := &SetNXLocker{Store: store, Token: "me", Reentrant: true, RetryInterval: 10 * time.Microsecond}
	rel1, err := l.Acquire("k")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := l.Acquire("k") // nested acquisition must not deadlock
	if err != nil {
		t.Fatal(err)
	}
	if err := rel2(); err != nil {
		t.Fatal(err)
	}
	// Still held after inner release.
	other := &SetNXLocker{Store: store, Token: "other"}
	if _, err := other.TryAcquire("k"); !errors.Is(err, core.ErrLockUnavailable) {
		t.Fatalf("lock free after inner release: %v", err)
	}
	if err := rel1(); err != nil {
		t.Fatal(err)
	}
	relO, err := other.TryAcquire("k")
	if err != nil {
		t.Fatalf("lock not free after outer release: %v", err)
	}
	_ = relO()
}

func TestSetNXTimeout(t *testing.T) {
	store := kv.NewStore(nil, sim.Latency{})
	a := &SetNXLocker{Store: store, Token: "a"}
	b := &SetNXLocker{Store: store, Token: "b", Timeout: 20 * time.Millisecond, RetryInterval: 2 * time.Millisecond}
	rel, err := a.Acquire("k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Acquire("k"); !errors.Is(err, core.ErrLockUnavailable) {
		t.Fatalf("timed-out acquire = %v", err)
	}
	_ = rel()
}

// TestRoundTripCounts verifies the Figure 2 cost model: SETNX acquire+release
// is 2 commands; MULTI acquire is 7 plus 1 to release.
func TestRoundTripCounts(t *testing.T) {
	store := kv.NewStore(nil, sim.Latency{})
	setnx := &SetNXLocker{Store: store, Token: "s"}
	start := store.Commands()
	rel, err := setnx.Acquire("k1")
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Commands() - start; got != 1 {
		t.Fatalf("SETNX acquire = %d commands, want 1", got)
	}
	if err := rel(); err != nil {
		t.Fatal(err)
	}
	if got := store.Commands() - start; got != 2 {
		t.Fatalf("SETNX acquire+release = %d commands, want 2", got)
	}

	multi := &MultiLocker{Store: store, Token: "m"}
	start = store.Commands()
	rel, err = multi.Acquire("k2")
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Commands() - start; got != 7 {
		t.Fatalf("MULTI acquire = %d commands, want 7", got)
	}
	if err := rel(); err != nil {
		t.Fatal(err)
	}
	if got := store.Commands() - start; got != 8 {
		t.Fatalf("MULTI acquire+release = %d commands, want 8", got)
	}
}

func TestMultiLockerContention(t *testing.T) {
	store := kv.NewStore(nil, sim.Latency{})
	a := &MultiLocker{Store: store, Token: "a", RetryInterval: 20 * time.Microsecond}
	b := &MultiLocker{Store: store, Token: "b", RetryInterval: 20 * time.Microsecond}
	relA, err := a.Acquire("k")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan core.Release, 1)
	go func() {
		rel, err := b.Acquire("k")
		if err != nil {
			t.Error(err)
			return
		}
		got <- rel
	}()
	select {
	case <-got:
		t.Fatal("b acquired while a held")
	case <-time.After(50 * time.Millisecond):
	}
	_ = relA()
	select {
	case rel := <-got:
		_ = rel()
	case <-time.After(2 * time.Second):
		t.Fatal("b never acquired after release")
	}
}

// TestSFUBuggyOutsideTxnReleasesImmediately reproduces Spree issue 10697
// (§4.1.1): the locking read auto-commits, so the lock is gone before the
// critical section runs.
func TestSFUBuggyOutsideTxnReleasesImmediately(t *testing.T) {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: time.Second})
	eng.CreateTable(newSchema("orders"))
	buggy := &SFULocker{Eng: eng, Table: "orders", OutsideTxn: true}
	correct := &SFULocker{Eng: eng, Table: "orders"}
	if err := buggy.EnsureRow(5); err != nil {
		t.Fatal(err)
	}

	relBuggy, err := buggy.Acquire("5")
	if err != nil {
		t.Fatal(err)
	}
	// A correct locker can immediately take the same lock: no protection.
	relC, err := correct.Acquire("5")
	if err != nil {
		t.Fatalf("lock still held after buggy acquire: %v", err)
	}
	if err := relC(); err != nil {
		t.Fatal(err)
	}
	_ = relBuggy()
}

func TestSFUCorrectHoldsUntilRelease(t *testing.T) {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	eng.CreateTable(newSchema("orders"))
	l := &SFULocker{Eng: eng, Table: "orders"}
	if err := l.EnsureRow(7); err != nil {
		t.Fatal(err)
	}
	rel, err := l.Acquire("7")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		rel2, err := l.Acquire("7")
		if err != nil {
			t.Error(err)
			return
		}
		close(got)
		_ = rel2()
	}()
	select {
	case <-got:
		t.Fatal("second acquire succeeded while held")
	case <-time.After(60 * time.Millisecond):
	}
	if err := rel(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never granted")
	}
}

func TestSFURejectsNonNumericKey(t *testing.T) {
	eng := engine.New(engine.Config{Dialect: engine.Postgres})
	eng.CreateTable(newSchema("orders"))
	l := &SFULocker{Eng: eng, Table: "orders"}
	if _, err := l.Acquire("cart-7"); err == nil {
		t.Fatal("non-numeric key accepted")
	}
}

// TestDBLockerBootRecovery reproduces §3.4.2: locks persisted before a crash
// are reclaimed after reboot by comparing boot IDs.
func TestDBLockerBootRecovery(t *testing.T) {
	eng := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: time.Second})
	SetupDBLockTable(eng)

	boot1 := &DBLocker{Eng: eng, BootID: "boot-1", Owner: "w1"}
	if _, err := boot1.Acquire("checkout"); err != nil {
		t.Fatal(err)
	}
	// The server crashes without releasing; the lock row persists. After
	// reboot a locker with a new boot ID takes the stale lock over
	// instead of deadlocking forever.
	boot2 := &DBLocker{Eng: eng, BootID: "boot-2", Owner: "w1", Timeout: time.Second, RetryInterval: time.Millisecond}
	rel, err := boot2.Acquire("checkout")
	if err != nil {
		t.Fatalf("stale lock not reclaimed: %v", err)
	}
	if err := rel(); err != nil {
		t.Fatal(err)
	}
	// And it is genuinely free afterwards.
	rel, err = boot2.Acquire("checkout")
	if err != nil {
		t.Fatal(err)
	}
	_ = rel()
}

func TestDBLockerSameBootBlocks(t *testing.T) {
	eng := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: time.Second})
	SetupDBLockTable(eng)
	a := &DBLocker{Eng: eng, BootID: "boot-1", Owner: "a", Timeout: 30 * time.Millisecond, RetryInterval: 2 * time.Millisecond}
	b := &DBLocker{Eng: eng, BootID: "boot-1", Owner: "b", Timeout: 30 * time.Millisecond, RetryInterval: 2 * time.Millisecond}
	rel, err := a.Acquire("k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Acquire("k"); !errors.Is(err, core.ErrLockUnavailable) {
		t.Fatalf("same-boot second acquire = %v", err)
	}
	if err := rel(); err != nil {
		t.Fatal(err)
	}
	rel, err = b.Acquire("k")
	if err != nil {
		t.Fatal(err)
	}
	_ = rel()
}

func TestNewBootIDDistinct(t *testing.T) {
	c := sim.NewFakeClock(time.Unix(1, 0))
	a := NewBootID(c)
	c.Advance(time.Nanosecond)
	b := NewBootID(c)
	if a == b {
		t.Fatal("boot ids collide")
	}
	if NewBootID(nil) == "" {
		t.Fatal("empty boot id")
	}
}
