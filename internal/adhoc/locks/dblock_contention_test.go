package locks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
)

// TestDBLockerContendedHandoff is a regression test for the insert-race
// verification: the loser's self-delete used to be rolled back together
// with the errLockHeld verdict, leaking an ownerless lock row that wedged
// every later acquisition. Six clients hammer one key with realistic
// network/fsync latencies; every acquisition must eventually succeed and
// the lock table must end empty.
func TestDBLockerContendedHandoff(t *testing.T) {
	lockEng := engine.New(engine.Config{
		Dialect: engine.MySQL, Net: sim.Latency{RTT: 150 * time.Microsecond},
		WALFsync: sim.Latency{Fsync: 2 * time.Millisecond}, LockTimeout: 30 * time.Second,
	})
	SetupDBLockTable(lockEng)
	l := &DBLocker{Eng: lockEng, BootID: "b", Owner: "w", Timeout: 20 * time.Second}

	const clients, iters = 6, 10
	var count atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rel, err := l.Acquire("sku:1")
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
				if err := rel(); err != nil {
					t.Errorf("release: %v", err)
					return
				}
				count.Add(1)
			}
		}()
	}
	wg.Wait()
	if count.Load() != clients*iters {
		t.Fatalf("%d acquisitions, want %d", count.Load(), clients*iters)
	}
	err := lockEng.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		rows, err := tx.Select(DBLockTable, storage.All{})
		if err != nil {
			return err
		}
		if len(rows) != 0 {
			t.Fatalf("leaked lock rows: %v", rows)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
