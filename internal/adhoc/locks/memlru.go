package locks

import (
	"container/list"
	"sync"

	"adhoctx/internal/core"
)

// LRULocker is Broadleaf's customised lock map: a ConcurrentHashMap with an
// LRU eviction policy bolted on to bound its size (§3.2.1). The production
// implementation evicts entries without checking whether the lock is held —
// evicting a held lock silently hands out a second, independent lock for
// the same key, breaking mutual exclusion (§4.1.1, issue 2555). That
// behaviour is reproduced when Buggy is true; the fixed variant refuses to
// evict held entries.
type LRULocker struct {
	// Capacity bounds the entry count; at least 1.
	Capacity int
	// Buggy evicts least-recently-used entries even while held.
	Buggy bool

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	evictions   int
	evictedHeld int
}

type lruEntry struct {
	key  string
	refs int
	held bool
	sem  chan struct{}
}

// NewLRULocker returns a lock map bounded to capacity entries.
func NewLRULocker(capacity int, buggy bool) *LRULocker {
	if capacity < 1 {
		capacity = 1
	}
	return &LRULocker{
		Capacity: capacity,
		Buggy:    buggy,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Name implements core.Locker.
func (l *LRULocker) Name() string { return "MEM-LRU" }

// Acquire implements core.Locker.
func (l *LRULocker) Acquire(key string) (core.Release, error) {
	e := l.enter(key)
	e.sem <- struct{}{} // block while held

	l.mu.Lock()
	// The entry may have been evicted while we waited (buggy mode). If the
	// map now holds a different entry for this key, our lock means nothing
	// — in the real bug the application never notices, and neither do we:
	// the caller proceeds with a dead lock. That is precisely the
	// reproduced defect.
	e.held = true
	l.mu.Unlock()

	release := func() error {
		l.mu.Lock()
		e.held = false
		e.refs--
		l.mu.Unlock()
		<-e.sem
		return nil
	}
	return release, nil
}

// enter registers interest in key, creating and LRU-promoting its entry and
// evicting beyond capacity.
func (l *LRULocker) enter(key string) *lruEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.entries[key]
	if ok {
		l.order.MoveToFront(el)
		e := el.Value.(*lruEntry)
		e.refs++
		return e
	}
	e := &lruEntry{key: key, sem: make(chan struct{}, 1), refs: 1}
	l.entries[key] = l.order.PushFront(e)
	l.evictOverflow()
	return e
}

// evictOverflow removes LRU-tail entries beyond capacity. Caller holds l.mu.
func (l *LRULocker) evictOverflow() {
	for len(l.entries) > l.Capacity {
		el := l.order.Back()
		if el == nil {
			return
		}
		e := el.Value.(*lruEntry)
		if !l.Buggy && (e.held || e.refs > 0) {
			// Fixed variant: never evict an entry somebody cares about.
			// Scan forward for an idle victim instead.
			victim := l.idleVictim()
			if victim == nil {
				return // everything is in use; exceed capacity
			}
			el, e = victim, victim.Value.(*lruEntry)
		}
		if e.held || e.refs > 0 {
			l.evictedHeld++
		}
		l.evictions++
		l.order.Remove(el)
		delete(l.entries, e.key)
	}
}

func (l *LRULocker) idleVictim() *list.Element {
	for el := l.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry)
		if !e.held && e.refs == 0 {
			return el
		}
	}
	return nil
}

// Stats returns (evictions, evictions of held/in-use locks).
func (l *LRULocker) Stats() (evictions, evictedHeld int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions, l.evictedHeld
}

// Size returns the live entry count.
func (l *LRULocker) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
