package locks

import (
	"sync"

	"adhoctx/internal/core"
	"adhoctx/internal/sched"
)

// SyncLocker models coordination via the language's built-in mutual
// exclusion — SCM Suite's use of the Java synchronized keyword (§3.2.1).
// Each key maps to one long-lived mutex, like synchronizing on a static
// singleton object. Mutexes are created on first use and never reclaimed.
type SyncLocker struct {
	mu      sync.Mutex
	mutexes map[string]*sync.Mutex
}

// NewSyncLocker returns an empty locker.
func NewSyncLocker() *SyncLocker {
	return &SyncLocker{mutexes: make(map[string]*sync.Mutex)}
}

// Name implements core.Locker.
func (l *SyncLocker) Name() string { return "SYNC" }

// Acquire implements core.Locker.
func (l *SyncLocker) Acquire(key string) (core.Release, error) {
	if sched.Enabled() {
		sched.Point("adhoc/sync/acquire#" + key)
	}
	m := l.mutexFor(key)
	// Cooperative path: TryLock is the polled predicate (success takes the
	// lock — latched by Wait); fall back to a real blocking Lock otherwise.
	if !sched.Wait("adhoc/sync/lock#"+key, m.TryLock) {
		m.Lock()
	}
	return func() error {
		if sched.Enabled() {
			sched.Point("adhoc/sync/release#" + key)
		}
		m.Unlock()
		return nil
	}, nil
}

func (l *SyncLocker) mutexFor(key string) *sync.Mutex {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.mutexes[key]
	if !ok {
		m = &sync.Mutex{}
		l.mutexes[key] = m
	}
	return m
}

// BuggySyncLocker reproduces the SCM Suite defect (§4.1.1, issue 17): the
// code synchronizes on thread-local ORM-mapped objects, so every thread
// locks a different object and nothing ever blocks. Here every Acquire
// locks a freshly created mutex — always immediately successful, providing
// no mutual exclusion whatsoever.
type BuggySyncLocker struct{}

// Name implements core.Locker.
func (BuggySyncLocker) Name() string { return "SYNC(buggy)" }

// Acquire implements core.Locker. It always succeeds instantly: the "lock"
// is a brand-new object nobody else can ever contend on.
func (BuggySyncLocker) Acquire(string) (core.Release, error) {
	m := &sync.Mutex{} // the thread-local object
	m.Lock()
	return func() error {
		m.Unlock()
		return nil
	}, nil
}
