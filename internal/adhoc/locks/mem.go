// Package locks provides the seven ad hoc lock implementations the study
// found in the wild (§3.2.1, Figure 2):
//
//	SYNC     — the language's built-in mutex (Java synchronized)
//	MEM      — an in-process concurrent lock map (Broadleaf)
//	MEM-LRU  — a lock map with LRU eviction (Broadleaf; eviction of held
//	           locks is the §4.1.1 lease bug)
//	KV-SETNX — a remote KV lease via one SETNX round trip (Mastodon, Saleor)
//	KV-MULTI — a remote KV lock via WATCH/GET/MULTI/SET/EXEC (Discourse)
//	SFU      — SELECT FOR UPDATE row locks (Spree, Saleor, Redmine)
//	DB       — a lock table in the RDBMS with boot-UUID recovery (Broadleaf)
//
// Each implements core.Locker. Known bugs from §4 are reproducible behind
// explicit Buggy* options, off by default.
package locks

import (
	"sync"

	"adhoctx/internal/core"
	"adhoctx/internal/sched"
)

// MemLocker is the in-process concurrent lock map (Broadleaf's
// ConcurrentHashMap of locks). Entries are reference-counted and removed
// when the last interested goroutine releases, so the map does not grow with
// the key space.
type MemLocker struct {
	mu      sync.Mutex
	entries map[string]*memEntry
}

type memEntry struct {
	refs int
	sem  chan struct{} // capacity 1: full = locked
}

// NewMemLocker returns an empty lock map.
func NewMemLocker() *MemLocker {
	return &MemLocker{entries: make(map[string]*memEntry)}
}

// Name implements core.Locker.
func (l *MemLocker) Name() string { return "MEM" }

// Acquire implements core.Locker.
func (l *MemLocker) Acquire(key string) (core.Release, error) {
	if sched.Enabled() {
		sched.Point("adhoc/mem/acquire#" + key)
	}
	e := l.enter(key)
	// Cooperative path: under a schedule controller the semaphore send is a
	// polled predicate (a successful poll takes the lock — latched by Wait).
	if !sched.Wait("adhoc/mem/lock#"+key, func() bool {
		select {
		case e.sem <- struct{}{}:
			return true
		default:
			return false
		}
	}) {
		e.sem <- struct{}{} // blocks while held
	}
	return func() error {
		if sched.Enabled() {
			sched.Point("adhoc/mem/release#" + key)
		}
		<-e.sem
		l.leave(key, e)
		return nil
	}, nil
}

// TryAcquire implements core.TryLocker.
func (l *MemLocker) TryAcquire(key string) (core.Release, error) {
	if sched.Enabled() {
		sched.Point("adhoc/mem/try#" + key)
	}
	e := l.enter(key)
	select {
	case e.sem <- struct{}{}:
		return func() error {
			<-e.sem
			l.leave(key, e)
			return nil
		}, nil
	default:
		l.leave(key, e)
		return nil, core.ErrLockUnavailable
	}
}

func (l *MemLocker) enter(key string) *memEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[key]
	if !ok {
		e = &memEntry{sem: make(chan struct{}, 1)}
		l.entries[key] = e
	}
	e.refs++
	return e
}

func (l *MemLocker) leave(key string, e *memEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.refs--
	if e.refs == 0 && l.entries[key] == e {
		delete(l.entries, key)
	}
}

// Size returns the number of live entries (diagnostics).
func (l *MemLocker) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
