package validate

import (
	"errors"
	"sync"
	"testing"
	"time"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
)

func newPostsEngine(t *testing.T) (*engine.Engine, int64) {
	t.Helper()
	e := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	e.CreateTable(storage.NewSchema("posts",
		storage.Column{Name: "content", Type: storage.TString},
		storage.Column{Name: "ver", Type: storage.TInt},
		storage.Column{Name: "view_cnt", Type: storage.TInt},
	))
	var pk int64
	err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		var err error
		pk, err = tx.Insert("posts", map[string]storage.Value{
			"content": "original", "ver": int64(1), "view_cnt": int64(0),
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, pk
}

func content(t *testing.T, e *engine.Engine, pk int64) string {
	t.Helper()
	var s string
	err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		row, err := tx.SelectOne("posts", storage.ByPK(pk))
		if err != nil {
			return err
		}
		s = row.Get(e.Schema("posts"), "content").(string)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckAndSetVersionGuard(t *testing.T) {
	e, pk := newPostsEngine(t)
	c := Checker{Eng: e, Table: "posts"}

	err := c.CheckAndSet(pk, VersionGuard("ver", 1), map[string]storage.Value{
		"content": "edited", "ver": int64(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stale version: conflict.
	err = c.CheckAndSet(pk, VersionGuard("ver", 1), map[string]storage.Value{
		"content": "stale edit", "ver": int64(2),
	})
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("stale guard = %v", err)
	}
	if got := content(t, e, pk); got != "edited" {
		t.Fatalf("content = %q", got)
	}
}

func TestCheckAndSetValueGuard(t *testing.T) {
	e, pk := newPostsEngine(t)
	c := Checker{Eng: e, Table: "posts"}
	// Column-value validation (§3.3.2): concurrent view_cnt churn must not
	// interfere with a content guard.
	if err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		_, err := tx.Update("posts", storage.ByPK(pk), map[string]storage.Value{"view_cnt": int64(99)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := c.CheckAndSet(pk, ValueGuard("content", "original"), map[string]storage.Value{
		"content": "edited",
	})
	if err != nil {
		t.Fatalf("content guard should tolerate view_cnt update: %v", err)
	}
}

func TestCheckAndSetIn(t *testing.T) {
	e, pk := newPostsEngine(t)
	c := Checker{Eng: e, Table: "posts"}
	err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		return c.CheckAndSetIn(tx, pk, VersionGuard("ver", 1), map[string]storage.Value{"ver": int64(2)})
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		return c.CheckAndSetIn(tx, pk, VersionGuard("ver", 1), map[string]storage.Value{"ver": int64(3)})
	})
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("stale in-txn guard = %v", err)
	}
}

// TestCheckAndSetConcurrentCounter: N workers increment via version
// validation with retry; no update is lost.
func TestCheckAndSetConcurrentCounter(t *testing.T) {
	e, pk := newPostsEngine(t)
	c := Checker{Eng: e, Table: "posts"}
	schema := e.Schema("posts")

	const workers, iters = 8, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := core.RetryOptimistic(1000, func() error {
					var ver, views int64
					if err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
						row, err := tx.SelectOne("posts", storage.ByPK(pk))
						if err != nil {
							return err
						}
						ver = row.Get(schema, "ver").(int64)
						views = row.Get(schema, "view_cnt").(int64)
						return nil
					}); err != nil {
						return err
					}
					return c.CheckAndSet(pk, VersionGuard("ver", ver), map[string]storage.Value{
						"ver": ver + 1, "view_cnt": views + 1,
					})
				})
				if err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var views int64
	if err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		row, err := tx.SelectOne("posts", storage.ByPK(pk))
		if err != nil {
			return err
		}
		views = row.Get(schema, "view_cnt").(int64)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if views != workers*iters {
		t.Fatalf("view_cnt = %d, want %d", views, workers*iters)
	}
}

func TestLockedCheckAndSet(t *testing.T) {
	e, pk := newPostsEngine(t)
	c := Checker{Eng: e, Table: "posts"}
	l := locks.NewMemLocker()
	schema := e.Schema("posts")

	err := c.LockedCheckAndSet(l, "post:1", pk, func(row storage.Row) (map[string]storage.Value, error) {
		if row.Get(schema, "content") != "original" {
			return nil, core.ErrConflict
		}
		return map[string]storage.Value{"content": "locked edit"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := content(t, e, pk); got != "locked edit" {
		t.Fatalf("content = %q", got)
	}
	// Now the stale branch.
	err = c.LockedCheckAndSet(l, "post:1", pk, func(row storage.Row) (map[string]storage.Value, error) {
		if row.Get(schema, "content") != "original" {
			return nil, core.ErrConflict
		}
		return map[string]storage.Value{"content": "x"}, nil
	})
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("stale locked edit = %v", err)
	}
}

func TestLockedCheckAndSetMissingRow(t *testing.T) {
	e, _ := newPostsEngine(t)
	c := Checker{Eng: e, Table: "posts"}
	l := locks.NewMemLocker()
	err := c.LockedCheckAndSet(l, "post:404", 404, func(storage.Row) (map[string]storage.Value, error) {
		t.Fatal("body ran for missing row")
		return nil, nil
	})
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("missing row = %v", err)
	}
}

// TestNonAtomicCheckThenSetLosesUpdate demonstrates the §4.1.2 defect: a
// write in the window between validation and commit is silently overwritten.
func TestNonAtomicCheckThenSetLosesUpdate(t *testing.T) {
	e, pk := newPostsEngine(t)
	c := Checker{Eng: e, Table: "posts"}

	err := c.NonAtomicCheckThenSet(pk, VersionGuard("ver", 1),
		map[string]storage.Value{"content": "admin A", "ver": int64(2)},
		func() {
			// A concurrent admin's conflicting update lands in the window;
			// it bumps the version, which *should* doom our update.
			err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
				_, err := tx.Update("posts", storage.ByPK(pk), map[string]storage.Value{
					"content": "admin B", "ver": int64(2),
				})
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	if err != nil {
		t.Fatalf("non-atomic variant does not detect the race: %v", err)
	}
	// Admin B's change is gone — the lost update the atomic variant
	// (TestCheckAndSetVersionGuard) prevents.
	if got := content(t, e, pk); got != "admin A" {
		t.Fatalf("content = %q; expected the buggy overwrite", got)
	}
}

func TestNonAtomicCheckThenSetGuardStillChecks(t *testing.T) {
	e, pk := newPostsEngine(t)
	c := Checker{Eng: e, Table: "posts"}
	err := c.NonAtomicCheckThenSet(pk, VersionGuard("ver", 99),
		map[string]storage.Value{"content": "x"}, nil)
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("failed guard = %v", err)
	}
	err = c.NonAtomicCheckThenSet(12345, VersionGuard("ver", 1),
		map[string]storage.Value{"content": "x"}, nil)
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("missing row = %v", err)
	}
}
