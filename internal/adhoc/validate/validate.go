// Package validate provides the validation procedures of optimistic ad hoc
// transactions (§3.2.2): the check that detects conflicting concurrent
// changes before updates are written back.
//
// The study found two families: ORM-assisted validation (Active Record's
// lock_version — atomic by construction, see internal/orm) and hand-crafted
// validation. Hand-crafted procedures must guarantee validate-and-commit
// atomicity themselves; 11 of the 26 optimistic cases fail to (§4.1.2). The
// helpers here offer the correct compiled-to-one-statement shape, the
// lock-guarded shape, and — explicitly labelled — the non-atomic buggy shape
// (Discourse's MiniSql escape).
package validate

import (
	"fmt"

	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/sched"
	"adhoctx/internal/storage"
)

// Checker validates and commits one row update.
type Checker struct {
	// Eng is the database.
	Eng *engine.Engine
	// Table is the validated table.
	Table string
	// Tag, when set, labels every transaction the checker issues (Txn.SetTag)
	// so spans and provenance attribute the validation fragments to their
	// API call.
	Tag string
}

// run executes one checker transaction, tagged when Tag is set.
func (c Checker) run(fn func(t *engine.Txn) error) error {
	return c.Eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		if c.Tag != "" {
			t.SetTag(c.Tag)
		}
		return fn(t)
	})
}

// VersionGuard returns the guard predicate for a version column — validate
// that the row still carries the version the transaction read (Figure 1c).
func VersionGuard(col string, version int64) storage.Pred {
	return storage.Eq{Col: col, Val: version}
}

// ValueGuard returns the guard predicate for column-value validation — the
// edit-post shape of §3.3.2: validate that the *content* is unchanged,
// tolerating concurrent updates to other columns.
func ValueGuard(col string, expected storage.Value) storage.Pred {
	return storage.Eq{Col: col, Val: expected}
}

// CheckAndSet validates guard and applies set to row pk in one atomic
// statement (UPDATE ... WHERE id=pk AND guard), in its own transaction.
// It returns core.ErrConflict when validation fails. This is the correct
// hand-crafted implementation: the RDBMS provides the atomicity.
func (c Checker) CheckAndSet(pk int64, guard storage.Pred, set map[string]storage.Value) error {
	var ok bool
	err := c.run(func(t *engine.Txn) error {
		var err error
		ok, err = t.UpdateIf(c.Table, pk, guard, set)
		return err
	})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%s id=%d guard %s: %w", c.Table, pk, guard, core.ErrConflict)
	}
	return nil
}

// CheckAndSetIn is CheckAndSet inside an existing transaction (the caller
// owns commit).
func (c Checker) CheckAndSetIn(t *engine.Txn, pk int64, guard storage.Pred, set map[string]storage.Value) error {
	ok, err := t.UpdateIf(c.Table, pk, guard, set)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%s id=%d guard %s: %w", c.Table, pk, guard, core.ErrConflict)
	}
	return nil
}

// LockedCheckAndSet guards a multi-statement validate-then-commit with an ad
// hoc lock: lock, re-read, validate, update, unlock — the §3.1.2 edit-post
// pattern where the validation needs the full row or non-database state.
// The body callback receives the freshly read row and returns the updates to
// apply, or core.ErrConflict to fail validation.
func (c Checker) LockedCheckAndSet(l core.Locker, key string, pk int64,
	body func(row storage.Row) (map[string]storage.Value, error)) error {
	return core.WithLock(l, key, func() error {
		return c.run(func(t *engine.Txn) error {
			row, err := t.SelectOne(c.Table, storage.ByPK(pk))
			if err != nil {
				return err
			}
			if row == nil {
				return fmt.Errorf("%s id=%d vanished: %w", c.Table, pk, core.ErrConflict)
			}
			set, err := body(row)
			if err != nil {
				return err
			}
			_, err = t.Update(c.Table, storage.ByPK(pk), set)
			return err
		})
	})
}

// NonAtomicCheckThenSet reproduces the §4.1.2 Discourse defect (MiniSql
// escaping the Active Record transaction): the validation query runs in one
// transaction and the commit in another, leaving a window where a concurrent
// writer invalidates the already-passed check. Interleave, when non-nil, is
// called inside the window (tests use it to force the race
// deterministically).
func (c Checker) NonAtomicCheckThenSet(pk int64, guard storage.Pred, set map[string]storage.Value,
	interleave func()) error {
	var row storage.Row
	err := c.run(func(t *engine.Txn) error {
		var err error
		row, err = t.SelectOne(c.Table, storage.ByPK(pk))
		return err
	})
	if err != nil {
		return err
	}
	schema := c.Eng.Schema(c.Table)
	if row == nil || !guard.Match(schema, row) {
		return fmt.Errorf("%s id=%d guard %s: %w", c.Table, pk, guard, core.ErrConflict)
	}
	// The unprotected window between validation and write-back. The named
	// scheduling point makes the race show up by name in explorer traces.
	sched.Point("adhoc/validate/window")
	if interleave != nil {
		interleave() // the unprotected window
	}
	return c.run(func(t *engine.Txn) error {
		// The update is unconditional: validation already "passed".
		_, err := t.Update(c.Table, storage.ByPK(pk), set)
		return err
	})
}
