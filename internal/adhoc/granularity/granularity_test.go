package granularity

import (
	"sync"
	"testing"
	"time"

	"adhoctx/internal/adhoc/locks"
)

func TestKeyBuilders(t *testing.T) {
	cases := []struct{ got, want string }{
		{RowKey("topics", 7), "topics:7"},
		{ColumnKey("topics", "max_post", 7), "topics.max_post:7"},
		{NamespaceKey("create_post", 7), "create_post:7"},
		{GroupKey("cart", 3), "group/cart:3"},
		{EqPredKey("payments", "order_id", int64(10)), "payments(order_id=10)"},
		{EqPredKey("users", "name", "bo"), `users(name="bo")`},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("key = %q, want %q", c.got, c.want)
		}
	}
}

// TestColumnKeysDoNotFalselyConflict encodes the §3.3.2 Discourse story:
// create-post and toggle-answer touch disjoint columns of the same row, and
// column-level keys let them run in parallel while same-column access still
// blocks.
func TestColumnKeysDoNotFalselyConflict(t *testing.T) {
	l := locks.NewMemLocker()
	relA, err := l.Acquire(ColumnKey("topics", "max_post", 7))
	if err != nil {
		t.Fatal(err)
	}
	// Different column, same row: no conflict.
	relB, err := l.TryAcquire(ColumnKey("topics", "answer", 7))
	if err != nil {
		t.Fatalf("column keys falsely conflict: %v", err)
	}
	// Same column: conflict.
	if _, err := l.TryAcquire(ColumnKey("topics", "max_post", 7)); err == nil {
		t.Fatal("same-column key did not conflict")
	}
	_ = relA()
	_ = relB()
}

func TestEqPredKeysPreciseConflicts(t *testing.T) {
	l := locks.NewMemLocker()
	relA, err := l.Acquire(EqPredKey("payments", "order_id", int64(10)))
	if err != nil {
		t.Fatal(err)
	}
	// order_id=11 never conflicts with order_id=10 — the gap-lock false
	// conflict the predicate scheme removes.
	relB, err := l.TryAcquire(EqPredKey("payments", "order_id", int64(11)))
	if err != nil {
		t.Fatalf("adjacent predicate keys conflict: %v", err)
	}
	if _, err := l.TryAcquire(EqPredKey("payments", "order_id", int64(10))); err == nil {
		t.Fatal("same predicate did not conflict")
	}
	_ = relA()
	_ = relB()
}

func TestIntervalLockTableOverlap(t *testing.T) {
	tbl := NewIntervalLockTable()
	rel1 := tbl.Acquire("orders.id", 10, 20)
	if _, ok := tbl.TryAcquire("orders.id", 15, 25); ok {
		t.Fatal("overlapping interval granted")
	}
	if _, ok := tbl.TryAcquire("orders.id", 20, 30); ok {
		t.Fatal("touching interval granted (inclusive bounds)")
	}
	rel2, ok := tbl.TryAcquire("orders.id", 21, 30)
	if !ok {
		t.Fatal("disjoint interval denied")
	}
	// Different space never conflicts.
	rel3, ok := tbl.TryAcquire("payments.id", 10, 20)
	if !ok {
		t.Fatal("different space conflicts")
	}
	_ = rel1()
	_ = rel2()
	_ = rel3()
	if tbl.HeldCount("orders.id") != 0 {
		t.Fatal("intervals leaked")
	}
}

func TestIntervalLockTableBlocksAndWakes(t *testing.T) {
	tbl := NewIntervalLockTable()
	rel := tbl.Acquire("s", 0, 100)
	got := make(chan struct{})
	go func() {
		r := tbl.Acquire("s", 50, 60)
		close(got)
		_ = r()
	}()
	select {
	case <-got:
		t.Fatal("overlapping acquire did not block")
	case <-time.After(50 * time.Millisecond):
	}
	_ = rel()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woken")
	}
}

func TestIntervalLockTableNormalisesBounds(t *testing.T) {
	tbl := NewIntervalLockTable()
	rel := tbl.Acquire("s", 20, 10) // reversed
	if _, ok := tbl.TryAcquire("s", 15, 15); ok {
		t.Fatal("reversed bounds not normalised")
	}
	_ = rel()
}

// TestIntervalLockTableStress: concurrent disjoint slots must conserve a
// per-slot critical-section invariant.
func TestIntervalLockTableStress(t *testing.T) {
	tbl := NewIntervalLockTable()
	var mu sync.Mutex
	in := map[int64]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				slot := int64((w + i) % 4)
				rel := tbl.Acquire("s", slot*10, slot*10+9)
				mu.Lock()
				in[slot]++
				if in[slot] != 1 {
					t.Errorf("slot %d: %d holders", slot, in[slot])
				}
				in[slot]--
				mu.Unlock()
				_ = rel()
			}
		}(w)
	}
	wg.Wait()
}
