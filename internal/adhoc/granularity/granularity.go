// Package granularity implements the coordination granularities the study
// catalogued (§3.3): lock-key construction for row-, column- and
// association-level coordination, an equality-predicate lock table, and —
// as the paper's §3.3.2 discussion anticipates — an interval lock table for
// range predicates.
//
// All of these are *naming and bookkeeping* disciplines layered over any
// core.Locker: the power of ad hoc granularity customisation is that the
// developer knows exactly which accesses must conflict, so a plain string
// key space suffices.
package granularity

import (
	"fmt"
	"sync"

	"adhoctx/internal/core"
	"adhoctx/internal/storage"
)

// RowKey names a whole-row lock: the default granularity, matching the
// database's own row locks.
func RowKey(table string, id int64) string {
	return fmt.Sprintf("%s:%d", table, id)
}

// ColumnKey names a column-level lock (§3.3.2 "columns-based vs row-based"):
// Discourse's create-post and toggle-answer coordinate disjoint columns of
// the same Topics row under different keys, so they never falsely conflict.
func ColumnKey(table, column string, id int64) string {
	return fmt.Sprintf("%s.%s:%d", table, column, id)
}

// NamespaceKey names a lock namespace per API, the literal shape of the
// Discourse example ("create_post"+topic_id, "toggle_answer"+topic_id).
func NamespaceKey(namespace string, id int64) string {
	return fmt.Sprintf("%s:%d", namespace, id)
}

// GroupKey names the single lock that coordinates a group of associatively
// accessed rows (§3.3.1): the cart lock covering Carts and Items rows.
// root is the owning entity's table (or concept) name.
func GroupKey(root string, id int64) string {
	return fmt.Sprintf("group/%s:%d", root, id)
}

// EqPredKey names an equality-predicate lock (§3.3.2 "gap vs predicate"):
// precise mutual exclusion on WHERE col = value without gap-lock false
// conflicts. Implemented, as the paper suggests, as "a concurrent hash table
// tracking locked values" — the hash table is whatever core.Locker backs it.
func EqPredKey(table, col string, val storage.Value) string {
	return fmt.Sprintf("%s(%s=%s)", table, col, storage.FormatValue(val))
}

// IntervalLockTable is the range-predicate extension the paper's discussion
// sketches ("to support range predicates, an intuitive method is to store
// all active ranges in an interval tree"). Two holders conflict iff their
// intervals overlap within a space. It is a standalone blocking lock table,
// not keyed strings: interval overlap is not expressible as key equality.
type IntervalLockTable struct {
	mu     sync.Mutex
	held   map[string][]*heldInterval
	waiter map[*waiter]struct{}
}

type heldInterval struct {
	lo, hi int64
	owner  *heldInterval // self-pointer used as identity
}

type waiter struct {
	space  string
	lo, hi int64
	ch     chan struct{}
}

// NewIntervalLockTable returns an empty table.
func NewIntervalLockTable() *IntervalLockTable {
	return &IntervalLockTable{
		held:   make(map[string][]*heldInterval),
		waiter: make(map[*waiter]struct{}),
	}
}

// Acquire blocks until [lo, hi] can be held without overlapping any other
// held interval in space, then holds it. Returns the release function.
func (t *IntervalLockTable) Acquire(space string, lo, hi int64) core.Release {
	if lo > hi {
		lo, hi = hi, lo
	}
	for {
		t.mu.Lock()
		if !t.overlaps(space, lo, hi) {
			h := &heldInterval{lo: lo, hi: hi}
			h.owner = h
			t.held[space] = append(t.held[space], h)
			t.mu.Unlock()
			return func() error {
				t.release(space, h)
				return nil
			}
		}
		w := &waiter{space: space, lo: lo, hi: hi, ch: make(chan struct{})}
		t.waiter[w] = struct{}{}
		t.mu.Unlock()
		<-w.ch
	}
}

// TryAcquire is the non-blocking variant.
func (t *IntervalLockTable) TryAcquire(space string, lo, hi int64) (core.Release, bool) {
	if lo > hi {
		lo, hi = hi, lo
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.overlaps(space, lo, hi) {
		return nil, false
	}
	h := &heldInterval{lo: lo, hi: hi}
	h.owner = h
	t.held[space] = append(t.held[space], h)
	return func() error {
		t.release(space, h)
		return nil
	}, true
}

// overlaps reports whether [lo, hi] intersects a held interval. Caller
// holds t.mu.
func (t *IntervalLockTable) overlaps(space string, lo, hi int64) bool {
	for _, h := range t.held[space] {
		if lo <= h.hi && h.lo <= hi {
			return true
		}
	}
	return false
}

func (t *IntervalLockTable) release(space string, h *heldInterval) {
	t.mu.Lock()
	list := t.held[space]
	for i, x := range list {
		if x == h {
			t.held[space] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(t.held[space]) == 0 {
		delete(t.held, space)
	}
	// Wake every waiter; they re-check and re-park as needed. Contended
	// interval tables are small in practice (active ranges per space), so
	// thundering herd is acceptable here.
	for w := range t.waiter {
		delete(t.waiter, w)
		close(w.ch)
	}
	t.mu.Unlock()
}

// HeldCount returns the number of intervals held in space (diagnostics).
func (t *IntervalLockTable) HeldCount(space string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.held[space])
}
