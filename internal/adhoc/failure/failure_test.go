package failure

import (
	"errors"
	"fmt"
	"testing"

	"adhoctx/internal/core"
)

func TestUndoLogRollsBackInReverse(t *testing.T) {
	var u UndoLog
	var order []string
	u.Register("first", func() error { order = append(order, "first"); return nil })
	u.Register("second", func() error { order = append(order, "second"); return nil })
	if u.Len() != 2 {
		t.Fatalf("Len = %d", u.Len())
	}
	if err := u.Rollback(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[second first]" {
		t.Fatalf("order = %v", order)
	}
	if u.Len() != 0 {
		t.Fatal("log not emptied")
	}
}

func TestUndoLogContinuesPastFailures(t *testing.T) {
	var u UndoLog
	ran := false
	boom := errors.New("boom")
	u.Register("a", func() error { ran = true; return nil })
	u.Register("b", func() error { return boom })
	err := u.Rollback()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !ran {
		t.Fatal("later undo skipped after earlier failure")
	}
}

func TestUndoLogCommitDiscards(t *testing.T) {
	var u UndoLog
	u.Register("a", func() error { t.Fatal("undo ran after commit"); return nil })
	u.Commit()
	if err := u.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairRetriesOnConflict(t *testing.T) {
	refreshes, bodies := 0, 0
	err := Repair(5,
		func() error { refreshes++; return nil },
		func() error {
			bodies++
			if bodies < 3 {
				return core.ErrConflict
			}
			return nil
		})
	if err != nil || bodies != 3 || refreshes != 2 {
		t.Fatalf("err=%v bodies=%d refreshes=%d", err, bodies, refreshes)
	}
}

func TestRepairStopsOnHardError(t *testing.T) {
	hard := errors.New("hard")
	bodies := 0
	err := Repair(5, nil, func() error { bodies++; return hard })
	if !errors.Is(err, hard) || bodies != 1 {
		t.Fatalf("err=%v bodies=%d", err, bodies)
	}
}

func TestRepairRefreshErrorSurfaces(t *testing.T) {
	rerr := errors.New("refresh failed")
	err := Repair(5, func() error { return rerr }, func() error { return core.ErrConflict })
	if !errors.Is(err, rerr) {
		t.Fatalf("err = %v", err)
	}
}

func TestRepairExhaustsAttempts(t *testing.T) {
	bodies := 0
	err := Repair(3, nil, func() error { bodies++; return core.ErrConflict })
	if !errors.Is(err, core.ErrConflict) || bodies != 3 {
		t.Fatalf("err=%v bodies=%d", err, bodies)
	}
}

func TestRunnerReportsAndFixes(t *testing.T) {
	broken := map[string]bool{"posts id=4": true, "posts id=9": true}
	checker := Checker{
		Name: "dangling-image-refs",
		Check: func() ([]Violation, error) {
			var vs []Violation
			for e := range broken {
				vs = append(vs, Violation{Entity: e, Detail: "image missing"})
			}
			return vs, nil
		},
		Fix: func(v Violation) error {
			delete(broken, v.Entity)
			return nil
		},
	}
	r := Runner{Checkers: []Checker{checker}}

	vs, err := r.Run(false)
	if err != nil || len(vs) != 2 {
		t.Fatalf("report-only: %v, %v", vs, err)
	}
	if len(broken) != 2 {
		t.Fatal("report-only run fixed something")
	}
	for _, v := range vs {
		if v.Checker != "dangling-image-refs" {
			t.Fatalf("checker name not stamped: %+v", v)
		}
		if v.String() == "" {
			t.Fatal("empty violation string")
		}
	}

	if _, err := r.Run(true); err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("fix run left %d broken", len(broken))
	}
	vs, err = r.Run(true)
	if err != nil || len(vs) != 0 {
		t.Fatalf("clean run: %v, %v", vs, err)
	}
}

func TestRunnerCheckError(t *testing.T) {
	boom := errors.New("db down")
	r := Runner{Checkers: []Checker{{
		Name:  "x",
		Check: func() ([]Violation, error) { return nil, boom },
	}}}
	if _, err := r.Run(false); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunnerFixError(t *testing.T) {
	boom := errors.New("cannot fix")
	r := Runner{Checkers: []Checker{{
		Name:  "x",
		Check: func() ([]Violation, error) { return []Violation{{Entity: "e"}}, nil },
		Fix:   func(Violation) error { return boom },
	}}}
	if _, err := r.Run(true); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
