// Package failure implements the failure-handling strategies of §3.4:
// manual compensation (undo logs), transaction repair (roll-forward
// retries), and fsck-style consistency checkers for the applications that
// tolerate intermediate states instead of rolling back.
package failure

import (
	"errors"
	"fmt"

	"adhoctx/internal/core"
)

// UndoLog collects compensation actions for manual rollback (§3.4.1 "2 cases
// are equipped with manually written rollback procedures"). Register an undo
// step after each persisted side effect; Rollback runs them newest-first;
// Commit discards them.
type UndoLog struct {
	steps []undoStep
}

type undoStep struct {
	name string
	fn   func() error
}

// Register appends a compensation step undoing the side effect just applied.
func (u *UndoLog) Register(name string, fn func() error) {
	u.steps = append(u.steps, undoStep{name: name, fn: fn})
}

// Rollback executes the registered compensations in reverse order,
// continuing past failures and joining their errors. The log is emptied.
func (u *UndoLog) Rollback() error {
	var errs []error
	for i := len(u.steps) - 1; i >= 0; i-- {
		if err := u.steps[i].fn(); err != nil {
			errs = append(errs, fmt.Errorf("undo %q: %w", u.steps[i].name, err))
		}
	}
	u.steps = nil
	return errors.Join(errs...)
}

// Commit discards the registered compensations.
func (u *UndoLog) Commit() { u.steps = nil }

// Len returns the number of pending compensation steps.
func (u *UndoLog) Len() int { return len(u.steps) }

// Repair runs one roll-forward unit of work (§3.4.1): body attempts the
// item's update and returns core.ErrConflict if the item changed underneath
// it, in which case refresh is invoked to re-derive the work from current
// state and body retries — preserving work done for unaffected items instead
// of aborting everything, exactly the Discourse shrink-image strategy.
func Repair(attempts int, refresh func() error, body func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = body()
		if err == nil || !errors.Is(err, core.ErrConflict) {
			return err
		}
		if refresh != nil {
			if rerr := refresh(); rerr != nil {
				return rerr
			}
		}
	}
	return err
}

// Violation is one inconsistency found by a checker.
type Violation struct {
	// Checker names the check that found it.
	Checker string
	// Entity locates the inconsistent object ("posts id=4").
	Entity string
	// Detail explains the violation.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Checker, v.Entity, v.Detail)
}

// Checker is one fsck-style database consistency check (§3.4.2: Discourse
// "checks and fixes inconsistent references" every twelve hours). Check
// finds violations; Fix, if non-nil, repairs one.
type Checker struct {
	Name  string
	Check func() ([]Violation, error)
	Fix   func(Violation) error
}

// Runner runs a set of checkers, mimicking the periodic background job.
type Runner struct {
	Checkers []Checker
}

// Run executes every checker and returns all violations found. When fix is
// true, each violation with a Fix handler is repaired after being reported.
func (r *Runner) Run(fix bool) ([]Violation, error) {
	var all []Violation
	for _, c := range r.Checkers {
		vs, err := c.Check()
		if err != nil {
			return all, fmt.Errorf("checker %s: %w", c.Name, err)
		}
		for i := range vs {
			vs[i].Checker = c.Name
		}
		all = append(all, vs...)
		if fix && c.Fix != nil {
			for _, v := range vs {
				if err := c.Fix(v); err != nil {
					return all, fmt.Errorf("fixing %s: %w", v, err)
				}
			}
		}
	}
	return all, nil
}
