package provenance

import (
	"os"
	"testing"

	"adhoctx/internal/disk"
	"adhoctx/internal/faults"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

// fuzzRecords derives a small deterministic history from fuzz bytes: record
// contents vary with the input, so the torn-write half of the fuzz target
// exercises many frame shapes and cut alignments.
func fuzzRecords(data []byte) []wal.Record {
	n := 1 + len(data)%4
	recs := make([]wal.Record, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(data)/n, (i+1)*len(data)/n
		recs = append(recs, wal.Record{
			LSN:   uint64(i + 1),
			TxnID: uint64(100 + i),
			Ops: []wal.Op{
				{Kind: wal.OpInsert, Table: "t", PK: int64(i), Row: storage.Row{int64(i), string(data[lo:hi])}},
				{Kind: wal.OpUpdate, Table: "u", PK: int64(i), Row: storage.Row{int64(len(data))}},
			},
		})
	}
	return recs
}

// FuzzProvenanceScan drives the two trust-boundary invariants:
//
//  1. FromRaw over arbitrary bytes never panics and attributes exactly the
//     ops of wal.ValidPrefix — nothing past the last valid frame.
//  2. FromDir over a segment torn at an arbitrary byte offset
//     (faults.TornFile, the same injector the disk recovery tests use)
//     never panics and attributes a strict prefix of the records actually
//     written — torn or truncated tails drop whole records, never invent
//     or reorder them.
func FuzzProvenanceScan(f *testing.F) {
	good := func() []byte {
		var raw []byte
		for _, r := range fuzzRecords([]byte("seed-history-bytes")) {
			b, err := wal.Encode(r)
			if err != nil {
				f.Fatal(err)
			}
			raw = append(raw, b...)
		}
		return raw
	}()
	f.Add([]byte{}, uint32(0))
	f.Add(good, uint32(1<<30))
	f.Add(append(append([]byte{}, good...), 0xde, 0xad), uint32(17))
	f.Add(good[:len(good)/2], uint32(5))
	corrupted := append([]byte{}, good...)
	corrupted[len(corrupted)/3] ^= 0xff
	f.Add(corrupted, uint32(40))

	f.Fuzz(func(t *testing.T, data []byte, cut uint32) {
		// ---- raw bytes: attribution == valid prefix, exactly ----
		ix := FromRaw(data)
		recs, valid := wal.ValidPrefix(data)
		want := 0
		for _, r := range recs {
			want += len(r.Ops)
		}
		if got := len(ix.Writes()); got != want {
			t.Fatalf("FromRaw attributed %d writes, valid prefix holds %d", got, want)
		}
		if ix.Dropped() != int64(len(data)-valid) {
			t.Fatalf("Dropped = %d, want %d", ix.Dropped(), int64(len(data)-valid))
		}
		maxLSN := uint64(0)
		for _, r := range recs {
			if r.LSN > maxLSN {
				maxLSN = r.LSN
			}
		}
		if ix.LastLSN() != maxLSN {
			t.Fatalf("LastLSN = %d, want %d", ix.LastLSN(), maxLSN)
		}

		// ---- torn segment: attribution is a prefix of what was written ----
		written := fuzzRecords(data)
		var raw []byte
		for _, r := range written {
			b, err := wal.Encode(r)
			if err != nil {
				t.Fatal(err)
			}
			raw = append(raw, b...)
		}
		cutAt := int64(cut) % int64(len(raw)+64)
		dir := t.TempDir()
		st, _, err := disk.Open(dir, disk.Options{
			WrapFile: func(f *os.File) disk.File { return faults.NewTornFile(f, cutAt) },
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = st.Append(raw)
		_ = st.Sync() // may die at the cut; the torn prefix is on disk
		_ = st.Close()

		ix2, err := FromDir(dir)
		if err != nil {
			t.Fatalf("FromDir: %v", err)
		}
		got := ix2.Writes()
		var exp []Write
		for _, r := range written {
			for i, op := range r.Ops {
				exp = append(exp, Write{LSN: r.LSN, TxnID: r.TxnID, Seq: i,
					Kind: op.Kind, Table: op.Table, PK: op.PK, Row: op.Row})
			}
		}
		if len(got) > len(exp) {
			t.Fatalf("torn dir attributed %d writes, only %d written", len(got), len(exp))
		}
		for i, w := range got {
			e := exp[i]
			if w.LSN != e.LSN || w.TxnID != e.TxnID || w.Seq != e.Seq ||
				w.Kind != e.Kind || w.Table != e.Table || w.PK != e.PK {
				t.Fatalf("write %d mismatch: got %+v want %+v", i, w, e)
			}
		}
		// Whole-record granularity: a torn tail must never surface a
		// record partially.
		if len(got)%2 != 0 {
			t.Fatalf("partial record surfaced: %d writes from 2-op records", len(got))
		}
	})
}
