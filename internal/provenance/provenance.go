// Package provenance answers "which transaction last wrote this row, under
// which protection, in which schedule step?" from the artifacts the stack
// already records: WAL records (in-memory logs or internal/disk segment
// directories), obs transaction spans (tag + outcome per txn id), and —
// when a schedule was replayed under the explorer — sched trace steps
// annotated with "txn=<id>" at the commit seam.
//
// The paper's §4 debugging story motivates the shape: an ad hoc
// transaction's writes are ordinary row writes, so the only way to explain
// a corrupted row is to join the redo log back to application intent. Two
// retrieved papers ("Transactions Make Debugging Easy", "Debugging
// Transactions and Tracking their Provenance with Reenactment") argue the
// log suffices for that reenactment; this package is the query layer over
// it.
//
// Trust boundary: nothing past the last valid WAL frame is ever attributed.
// FromRaw stops at the first undecodable byte (wal.ValidPrefix) and FromDir
// reads directories through disk.ReadRecovered, which stops at the first
// bad frame without mutating the directory.
package provenance

import (
	"sort"

	"adhoctx/internal/disk"
	"adhoctx/internal/obs"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

// Write is one row write recovered from the WAL: one op of one committed
// transaction's record, in log order.
type Write struct {
	LSN   uint64     // record LSN (one per txn commit batch)
	TxnID uint64     // committing transaction
	Seq   int        // op position within its record, 0-based
	Kind  wal.OpKind // INSERT / UPDATE / DELETE
	Table string
	PK    int64
	Row   storage.Row // after-image; nil for deletes
	// FromCheckpoint marks synthetic records from a checkpoint snapshot:
	// the row state is real but the writing transaction's identity was
	// compacted away, so TxnID must not be read as application intent.
	FromCheckpoint bool
}

type rowKey struct {
	table string
	pk    int64
}

// Index is an in-memory provenance index over a recovered WAL prefix plus
// optional span/tag attachments. Build once, query many times; not safe for
// concurrent mutation.
type Index struct {
	writes   []Write
	byRow    map[rowKey][]int
	byTxn    map[uint64][]int
	tags     map[uint64]string
	outcomes map[uint64]string
	lastLSN  uint64
	dropped  int64
}

// FromRecords indexes already-decoded records (tail records; none are
// checkpoint-synthetic).
func FromRecords(recs []wal.Record) *Index {
	ix := newIndex()
	for _, r := range recs {
		ix.addRecord(r, false)
	}
	return ix
}

// FromRaw indexes the longest valid prefix of a raw WAL byte stream
// (engine.WALBytes, wal.Log.Bytes). It never fails: undecodable bytes end
// the scan and are counted in Dropped.
func FromRaw(raw []byte) *Index {
	recs, valid := wal.ValidPrefix(raw)
	ix := FromRecords(recs)
	ix.dropped = int64(len(raw) - valid)
	return ix
}

// FromRecovered indexes a disk recovery result: checkpoint snapshot records
// first (flagged FromCheckpoint), then the tail.
func FromRecovered(rec *disk.Recovered) *Index {
	ix := newIndex()
	ckRecs, ckValid := wal.ValidPrefix(rec.Checkpoint)
	for _, r := range ckRecs {
		ix.addRecord(r, true)
	}
	tailRecs, tailValid := wal.ValidPrefix(rec.Tail)
	for _, r := range tailRecs {
		ix.addRecord(r, false)
	}
	ix.dropped = rec.TruncatedTail +
		int64(len(rec.Checkpoint)-ckValid) + int64(len(rec.Tail)-tailValid)
	return ix
}

// FromDir recovers a data directory read-only (disk.ReadRecovered — no
// truncation, no deletes) and indexes it.
func FromDir(dir string) (*Index, error) {
	rec, err := disk.ReadRecovered(dir)
	if err != nil {
		return nil, err
	}
	return FromRecovered(rec), nil
}

func newIndex() *Index {
	return &Index{
		byRow:    make(map[rowKey][]int),
		byTxn:    make(map[uint64][]int),
		tags:     make(map[uint64]string),
		outcomes: make(map[uint64]string),
	}
}

func (ix *Index) addRecord(r wal.Record, fromCkpt bool) {
	for i, op := range r.Ops {
		w := Write{
			LSN:            r.LSN,
			TxnID:          r.TxnID,
			Seq:            i,
			Kind:           op.Kind,
			Table:          op.Table,
			PK:             op.PK,
			Row:            op.Row,
			FromCheckpoint: fromCkpt,
		}
		idx := len(ix.writes)
		ix.writes = append(ix.writes, w)
		k := rowKey{op.Table, op.PK}
		ix.byRow[k] = append(ix.byRow[k], idx)
		if !fromCkpt {
			ix.byTxn[r.TxnID] = append(ix.byTxn[r.TxnID], idx)
		}
	}
	if r.LSN > ix.lastLSN {
		ix.lastLSN = r.LSN
	}
}

// AttachSpans joins completed obs spans onto the index, making Tag and
// Outcome resolvable per transaction id.
func (ix *Index) AttachSpans(spans []obs.CompletedSpan) {
	for _, sp := range spans {
		if sp.Tag != "" {
			ix.tags[sp.TxnID] = sp.Tag
		}
		if sp.Outcome != "" {
			ix.outcomes[sp.TxnID] = sp.Outcome
		}
	}
}

// AttachTags joins a txn-id→tag map (e.g. captured by a scenario probe)
// onto the index.
func (ix *Index) AttachTags(tags map[uint64]string) {
	for id, tag := range tags {
		if tag != "" {
			ix.tags[id] = tag
		}
	}
}

// Tag returns the span/probe tag attached for a transaction, or "".
func (ix *Index) Tag(txnID uint64) string { return ix.tags[txnID] }

// Outcome returns the span outcome attached for a transaction, or "".
func (ix *Index) Outcome(txnID uint64) string { return ix.outcomes[txnID] }

// Writes returns every indexed write in log order.
func (ix *Index) Writes() []Write { return ix.writes }

// LastLSN returns the highest indexed LSN.
func (ix *Index) LastLSN() uint64 { return ix.lastLSN }

// Dropped returns how many trailing bytes were ignored as undecodable
// (torn or corrupt); nothing in them is attributed.
func (ix *Index) Dropped() int64 { return ix.dropped }

// History returns every write to (table, pk) in log order.
func (ix *Index) History(table string, pk int64) []Write {
	idxs := ix.byRow[rowKey{table, pk}]
	out := make([]Write, len(idxs))
	for i, j := range idxs {
		out[i] = ix.writes[j]
	}
	return out
}

// LastWriter returns the final write to (table, pk), answering "which txn
// last wrote this row". ok is false when the row never appears in the
// recovered prefix.
func (ix *Index) LastWriter(table string, pk int64) (Write, bool) {
	idxs := ix.byRow[rowKey{table, pk}]
	if len(idxs) == 0 {
		return Write{}, false
	}
	return ix.writes[idxs[len(idxs)-1]], true
}

// Txn returns every write the given transaction committed, in log order
// (checkpoint-synthetic records excluded — their txn ids are not intent).
func (ix *Index) Txn(id uint64) []Write {
	idxs := ix.byTxn[id]
	out := make([]Write, len(idxs))
	for i, j := range idxs {
		out[i] = ix.writes[j]
	}
	return out
}

// TxnIDs returns the committing transaction ids present in the tail, sorted.
func (ix *Index) TxnIDs() []uint64 {
	out := make([]uint64, 0, len(ix.byTxn))
	for id := range ix.byTxn {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rows returns every distinct (table, pk) seen, sorted by table then pk —
// the stable iteration order the report tooling renders in.
func (ix *Index) Rows() []struct {
	Table string
	PK    int64
} {
	out := make([]struct {
		Table string
		PK    int64
	}, 0, len(ix.byRow))
	for k := range ix.byRow {
		out = append(out, struct {
			Table string
			PK    int64
		}{k.table, k.pk})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].PK < out[j].PK
	})
	return out
}
