package provenance

import (
	"strings"
	"testing"

	"adhoctx/internal/disk"
	"adhoctx/internal/obs"
	"adhoctx/internal/sched"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

// testRecords is a tiny three-txn history over two tables.
func testRecords() []wal.Record {
	return []wal.Record{
		{LSN: 1, TxnID: 10, Ops: []wal.Op{
			{Kind: wal.OpInsert, Table: "posts", PK: 1, Row: storage.Row{int64(1), "hello"}},
		}},
		{LSN: 2, TxnID: 11, Ops: []wal.Op{
			{Kind: wal.OpUpdate, Table: "posts", PK: 1, Row: storage.Row{int64(1), "edited"}},
			{Kind: wal.OpInsert, Table: "users", PK: 5, Row: storage.Row{int64(5), "bob"}},
		}},
		{LSN: 3, TxnID: 12, Ops: []wal.Op{
			{Kind: wal.OpDelete, Table: "posts", PK: 1},
		}},
	}
}

func encodeAll(t *testing.T, recs []wal.Record) []byte {
	t.Helper()
	var raw []byte
	for _, r := range recs {
		b, err := wal.Encode(r)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		raw = append(raw, b...)
	}
	return raw
}

func TestIndexQueries(t *testing.T) {
	ix := FromRaw(encodeAll(t, testRecords()))
	if got := len(ix.Writes()); got != 4 {
		t.Fatalf("writes = %d, want 4", got)
	}
	if ix.LastLSN() != 3 {
		t.Fatalf("last lsn = %d, want 3", ix.LastLSN())
	}
	if ix.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", ix.Dropped())
	}

	w, ok := ix.LastWriter("posts", 1)
	if !ok || w.TxnID != 12 || w.Kind != wal.OpDelete {
		t.Fatalf("LastWriter(posts,1) = %+v ok=%v, want delete by txn 12", w, ok)
	}
	if hist := ix.History("posts", 1); len(hist) != 3 {
		t.Fatalf("history len = %d, want 3", len(hist))
	}
	if _, ok := ix.LastWriter("posts", 99); ok {
		t.Fatal("LastWriter on unseen row reported ok")
	}
	if ws := ix.Txn(11); len(ws) != 2 || ws[0].Table != "posts" || ws[1].Table != "users" {
		t.Fatalf("Txn(11) = %+v", ws)
	}
	if ids := ix.TxnIDs(); len(ids) != 3 || ids[0] != 10 || ids[2] != 12 {
		t.Fatalf("TxnIDs = %v", ids)
	}
	rows := ix.Rows()
	if len(rows) != 2 || rows[0].Table != "posts" || rows[1].Table != "users" {
		t.Fatalf("Rows = %v", rows)
	}
}

func TestFromRawStopsAtGarbage(t *testing.T) {
	raw := encodeAll(t, testRecords())
	garbage := append(append([]byte{}, raw...), 0xde, 0xad, 0xbe, 0xef)
	ix := FromRaw(garbage)
	if got := len(ix.Writes()); got != 4 {
		t.Fatalf("writes = %d, want 4 (garbage must not add attributions)", got)
	}
	if ix.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", ix.Dropped())
	}

	// Corruption mid-log: flip a byte in the second record's payload. The
	// whole suffix becomes untrusted.
	mid := append([]byte{}, raw...)
	mid[len(mid)/2] ^= 0xff
	ix = FromRaw(mid)
	for _, w := range ix.Writes() {
		if w.LSN >= 2 {
			t.Fatalf("attributed write past corruption: %+v", w)
		}
	}
	if ix.Dropped() == 0 {
		t.Fatal("corruption not reflected in Dropped")
	}
}

func TestAttachSpansAndTags(t *testing.T) {
	ix := FromRaw(encodeAll(t, testRecords()))
	ix.AttachSpans([]obs.CompletedSpan{
		{TxnID: 10, Tag: "create-post", Outcome: "commit"},
		{TxnID: 11, Tag: "edit-post", Outcome: "commit"},
	})
	ix.AttachTags(map[uint64]string{12: "delete-post"})
	if ix.Tag(10) != "create-post" || ix.Outcome(10) != "commit" {
		t.Fatalf("span join failed: tag=%q outcome=%q", ix.Tag(10), ix.Outcome(10))
	}
	if ix.Tag(12) != "delete-post" {
		t.Fatalf("tag join failed: %q", ix.Tag(12))
	}

	why := ix.FormatWhy("posts", 1)
	for _, want := range []string{"why posts:1", "last writer:", "tag=delete-post", "history (3 writes):"} {
		if !strings.Contains(why, want) {
			t.Fatalf("FormatWhy missing %q:\n%s", want, why)
		}
	}
	txn := ix.FormatTxn(11)
	for _, want := range []string{"txn 11 tag=edit-post outcome=commit", "writes (2):", `"edited"`} {
		if !strings.Contains(txn, want) {
			t.Fatalf("FormatTxn missing %q:\n%s", want, txn)
		}
	}
	sum := ix.FormatSummary()
	if !strings.Contains(sum, "provenance: 4 writes, 3 txns, last lsn 3, dropped bytes 0") {
		t.Fatalf("FormatSummary header wrong:\n%s", sum)
	}
	if ix.FormatWhy("posts", 99) == "" || !strings.Contains(ix.FormatWhy("posts", 99), "no write") {
		t.Fatal("FormatWhy on unseen row should say so")
	}
	if !strings.Contains(ix.FormatTxn(999), "no committed writes") {
		t.Fatal("FormatTxn on unseen txn should say so")
	}
}

func TestFromRecoveredMarksCheckpointWrites(t *testing.T) {
	recs := testRecords()
	ck := encodeAll(t, recs[:1])
	tail := encodeAll(t, recs[1:])
	ix := FromRecovered(&disk.Recovered{
		Checkpoint:    ck,
		CheckpointLSN: 1,
		Tail:          tail,
		LastLSN:       3,
	})
	if got := len(ix.Writes()); got != 4 {
		t.Fatalf("writes = %d, want 4", got)
	}
	hist := ix.History("posts", 1)
	if !hist[0].FromCheckpoint || hist[1].FromCheckpoint {
		t.Fatalf("checkpoint flags wrong: %+v", hist)
	}
	// Checkpoint-synthetic txn ids are not intent: Txn() must exclude them.
	if ws := ix.Txn(10); len(ws) != 0 {
		t.Fatalf("Txn(10) over checkpoint record = %+v, want none", ws)
	}
	if !strings.Contains(ix.describe(hist[0]), "checkpoint") {
		t.Fatal("checkpoint write not called out in rendering")
	}
}

func TestFromDir(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := disk.Open(dir, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatal("fresh dir not empty")
	}
	recs := testRecords()
	if err := st.Append(encodeAll(t, recs)); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ix, err := FromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Writes()) != 4 || ix.LastLSN() != 3 {
		t.Fatalf("FromDir: %d writes, last lsn %d", len(ix.Writes()), ix.LastLSN())
	}
	w, ok := ix.LastWriter("users", 5)
	if !ok || w.TxnID != 11 {
		t.Fatalf("LastWriter(users,5) = %+v ok=%v", w, ok)
	}
}

func TestCommitStep(t *testing.T) {
	steps := []sched.Step{
		{Task: "t1", Label: "engine/begin"},
		{Task: "t1", Label: "engine/commit", Note: "txn=7 tag=reserve-0"},
		{Task: "t2", Label: "engine/commit", Note: "txn=8"},
	}
	if got := CommitStep(steps, 7); got != 1 {
		t.Fatalf("CommitStep(7) = %d, want 1", got)
	}
	if got := CommitStep(steps, 8); got != 2 {
		t.Fatalf("CommitStep(8) = %d, want 2", got)
	}
	if got := CommitStep(steps, 9); got != -1 {
		t.Fatalf("CommitStep(9) = %d, want -1", got)
	}
	// "txn=70" must not match txn=7.
	if got := CommitStep([]sched.Step{{Note: "txn=70"}}, 7); got != -1 {
		t.Fatalf("prefix note matched: %d", got)
	}
}
