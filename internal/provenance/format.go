package provenance

import (
	"fmt"
	"strings"

	"adhoctx/internal/storage"
)

// Rendering is deterministic by construction: writes are emitted in log
// order, rows in table-then-pk order, and no wall-clock or pointer values
// appear — the golden tests in cmd/adhocreport pin the exact bytes.

// formatRow renders an after-image, "-" for deletes.
func formatRow(r storage.Row) string {
	if r == nil {
		return "-"
	}
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = storage.FormatValue(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Describe renders one write's one-line description with any attached tag
// and outcome — the single-write form the blame renderer embeds.
func (ix *Index) Describe(w Write) string { return ix.describe(w) }

// describe renders one write's one-line description.
func (ix *Index) describe(w Write) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lsn=%d seq=%d txn=%d %s %s:%d %s",
		w.LSN, w.Seq, w.TxnID, w.Kind, w.Table, w.PK, formatRow(w.Row))
	if w.FromCheckpoint {
		b.WriteString(" [checkpoint: original txn compacted away]")
	} else {
		if tag := ix.tags[w.TxnID]; tag != "" {
			fmt.Fprintf(&b, " tag=%s", tag)
		}
		if oc := ix.outcomes[w.TxnID]; oc != "" {
			fmt.Fprintf(&b, " outcome=%s", oc)
		}
	}
	return b.String()
}

// FormatWhy renders the answer to "-why table:pk": the last writer of the
// row, then its full history, oldest first.
func (ix *Index) FormatWhy(table string, pk int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "why %s:%d\n", table, pk)
	hist := ix.History(table, pk)
	if len(hist) == 0 {
		fmt.Fprintf(&b, "  no write to %s:%d in the recovered log\n", table, pk)
		return b.String()
	}
	last := hist[len(hist)-1]
	fmt.Fprintf(&b, "  last writer: %s\n", ix.describe(last))
	fmt.Fprintf(&b, "  history (%d writes):\n", len(hist))
	for _, w := range hist {
		fmt.Fprintf(&b, "    %s\n", ix.describe(w))
	}
	return b.String()
}

// FormatTxn renders everything one transaction committed.
func (ix *Index) FormatTxn(id uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "txn %d", id)
	if tag := ix.tags[id]; tag != "" {
		fmt.Fprintf(&b, " tag=%s", tag)
	}
	if oc := ix.outcomes[id]; oc != "" {
		fmt.Fprintf(&b, " outcome=%s", oc)
	}
	b.WriteString("\n")
	ws := ix.Txn(id)
	if len(ws) == 0 {
		fmt.Fprintf(&b, "  no committed writes for txn %d in the recovered log\n", id)
		return b.String()
	}
	fmt.Fprintf(&b, "  writes (%d):\n", len(ws))
	for _, w := range ws {
		fmt.Fprintf(&b, "    %s\n", ix.describe(w))
	}
	return b.String()
}

// FormatSummary renders the index overview: counts, LSN horizon, dropped
// bytes, and the last writer of every row.
func (ix *Index) FormatSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "provenance: %d writes, %d txns, last lsn %d, dropped bytes %d\n",
		len(ix.writes), len(ix.byTxn), ix.lastLSN, ix.dropped)
	rows := ix.Rows()
	fmt.Fprintf(&b, "rows (%d):\n", len(rows))
	for _, r := range rows {
		w, _ := ix.LastWriter(r.Table, r.PK)
		fmt.Fprintf(&b, "  %s\n", ix.describe(w))
	}
	return b.String()
}
