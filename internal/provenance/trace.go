package provenance

import (
	"strconv"
	"strings"

	"adhoctx/internal/sched"
)

// CommitStep finds the schedule trace step that committed txnID: the engine
// annotates its commit seam with "txn=<id>" (sched.Annotate), so a replayed
// violating schedule carries the join key from WAL records back to trace
// steps. Returns the step index, or -1 when the trace has no such step
// (txn committed outside the controlled run, or the trace predates the
// annotation).
func CommitStep(steps []sched.Step, txnID uint64) int {
	want := "txn=" + strconv.FormatUint(txnID, 10)
	for i, s := range steps {
		if s.Note == "" {
			continue
		}
		for _, f := range strings.Fields(s.Note) {
			if f == want {
				return i
			}
		}
	}
	return -1
}
