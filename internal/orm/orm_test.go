package orm

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
)

// Test models mirroring the Spree example of §3.1.1.

type Product struct {
	ID        int64     `db:"id"`
	Name      string    `db:"name"`
	UpdatedAt time.Time `db:"updated_at"`
}

type SKU struct {
	ID        int64 `db:"id"`
	ProductID int64 `db:"product_id"`
	Quantity  int64 `db:"quantity"`
	UpdatedAt time.Time
	Note      *string `db:"note"`
}

type Poll struct {
	ID          int64  `db:"id"`
	Tallies     string `db:"tallies"`
	LockVersion int64  `db:"lock_version"`
}

type Account struct {
	ID    int64  `db:"id"`
	Email string `db:"email"`
}

func newTestRegistry(t *testing.T) (*Registry, *sim.FakeClock) {
	t.Helper()
	clock := sim.NewFakeClock(time.Date(2022, 6, 12, 0, 0, 0, 0, time.UTC))
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	reg := NewRegistry(eng, clock)
	reg.Register("products", &Product{})
	reg.Register("skus", &SKU{},
		WithIndex("product_id"),
		WithTouch(TouchSpec{ParentTable: "products", FKColumn: "product_id"}),
		WithValidation(Min{Col: "quantity", Min: 0}),
	)
	reg.Register("polls", &Poll{})
	reg.Register("accounts", &Account{}, WithIndex("email"), WithValidation(Unique{Col: "email"}), WithValidation(Presence{Col: "email"}))
	return reg, clock
}

func TestSaveInsertAndFind(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()

	p := &Product{Name: "widget"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	if p.ID == 0 {
		t.Fatal("insert did not assign id")
	}

	var got Product
	ok, err := s.Find(&got, p.ID)
	if err != nil || !ok {
		t.Fatalf("Find: %v, %v", ok, err)
	}
	if got.Name != "widget" {
		t.Fatalf("Name = %q", got.Name)
	}

	ok, err = s.Find(&got, 999)
	if err != nil || ok {
		t.Fatalf("Find(missing) = %v, %v", ok, err)
	}
}

func TestSaveUpdate(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	p := &Product{Name: "widget"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	p.Name = "gadget"
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	var got Product
	if _, err := s.Find(&got, p.ID); err != nil {
		t.Fatal(err)
	}
	if got.Name != "gadget" {
		t.Fatalf("Name = %q", got.Name)
	}
}

func TestNullableFields(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	p := &Product{Name: "p"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	sku := &SKU{ProductID: p.ID, Quantity: 5}
	if err := s.Save(sku); err != nil {
		t.Fatal(err)
	}
	var got SKU
	if _, err := s.Find(&got, sku.ID); err != nil {
		t.Fatal(err)
	}
	if got.Note != nil {
		t.Fatalf("Note = %v, want nil", got.Note)
	}
	note := "fragile"
	got.Note = &note
	if err := s.Save(&got); err != nil {
		t.Fatal(err)
	}
	var again SKU
	if _, err := s.Find(&again, sku.ID); err != nil {
		t.Fatal(err)
	}
	if again.Note == nil || *again.Note != "fragile" {
		t.Fatalf("Note round trip = %v", again.Note)
	}
}

// TestSaveTouchesParent verifies the §3.1.1 behaviour: ORM.save(sku)
// generates a Products updated_at refresh inside the same transaction.
func TestSaveTouchesParent(t *testing.T) {
	reg, clock := newTestRegistry(t)
	s := reg.Session()
	p := &Product{Name: "p"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	before := p.UpdatedAt

	clock.Advance(time.Hour)
	sku := &SKU{ProductID: p.ID, Quantity: 3}
	if err := s.Save(sku); err != nil {
		t.Fatal(err)
	}
	var got Product
	if _, err := s.Find(&got, p.ID); err != nil {
		t.Fatal(err)
	}
	if !got.UpdatedAt.After(before) {
		t.Fatalf("parent not touched: %v vs %v", got.UpdatedAt, before)
	}
}

func TestTouchHookRuns(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: time.Second})
	reg := NewRegistry(eng, clock)
	reg.Register("products", &Product{})
	hookCalls := 0
	reg.Register("skus", &SKU{}, WithTouch(TouchSpec{
		ParentTable: "products",
		FKColumn:    "product_id",
		Hook: func(txn *engine.Txn, childID, parentID int64) error {
			hookCalls++
			return nil
		},
	}))
	s := reg.Session()
	p := &Product{Name: "p"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&SKU{ProductID: p.ID, Quantity: 1}); err != nil {
		t.Fatal(err)
	}
	if hookCalls != 1 {
		t.Fatalf("hook ran %d times", hookCalls)
	}
}

func TestWhereAndCount(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	p := &Product{Name: "p"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Save(&SKU{ProductID: p.ID, Quantity: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var skus []SKU
	if err := s.Where(&skus, storage.Eq{Col: "product_id", Val: p.ID}); err != nil {
		t.Fatal(err)
	}
	if len(skus) != 3 {
		t.Fatalf("Where returned %d", len(skus))
	}
	n, err := s.Count(&SKU{}, storage.Eq{Col: "product_id", Val: p.ID})
	if err != nil || n != 3 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestDeleteAndReload(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	p := &Product{Name: "p"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(p); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Reload after delete = %v", err)
	}
}

// TestOptimisticLocking reproduces Figure 1c / §3.2.2: lock_version models
// get ORM-assisted atomic validate-and-commit, and a stale in-memory object
// fails with ErrStaleObject.
func TestOptimisticLocking(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	poll := &Poll{Tallies: "{}"}
	if err := s.Save(poll); err != nil {
		t.Fatal(err)
	}

	var copy1, copy2 Poll
	if _, err := s.Find(&copy1, poll.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Find(&copy2, poll.ID); err != nil {
		t.Fatal(err)
	}

	copy1.Tallies = `{"1":11}`
	if err := s.Save(&copy1); err != nil {
		t.Fatal(err)
	}
	copy2.Tallies = `{"2":13}`
	err := s.Save(&copy2)
	if !errors.Is(err, ErrStaleObject) {
		t.Fatalf("stale save = %v, want ErrStaleObject", err)
	}

	// The OCC retry loop of Figure 1c: reload and reapply.
	if err := s.Reload(&copy2); err != nil {
		t.Fatal(err)
	}
	copy2.Tallies = `{"1":11,"2":13}`
	if err := s.Save(&copy2); err != nil {
		t.Fatalf("retry after reload: %v", err)
	}
	var final Poll
	if _, err := s.Find(&final, poll.ID); err != nil {
		t.Fatal(err)
	}
	if final.LockVersion != 2 {
		t.Fatalf("lock_version = %d, want 2", final.LockVersion)
	}
	if final.Tallies != `{"1":11,"2":13}` {
		t.Fatalf("tallies = %s", final.Tallies)
	}
}

// TestOptimisticLockingConcurrent: under concurrency exactly the retries
// that lost the race fail, and no update is lost.
func TestOptimisticLockingConcurrent(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	poll := &Poll{Tallies: "0"}
	if err := s.Save(poll); err != nil {
		t.Fatal(err)
	}

	const workers, iters = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := reg.Session()
			for i := 0; i < iters; i++ {
				for {
					var p Poll
					if _, err := sess.Find(&p, poll.ID); err != nil {
						t.Error(err)
						return
					}
					n := mustAtoi(t, p.Tallies)
					p.Tallies = itoa(n + 1)
					err := sess.Save(&p)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrStaleObject) {
						t.Errorf("save: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	var final Poll
	if _, err := s.Find(&final, poll.ID); err != nil {
		t.Fatal(err)
	}
	if got := mustAtoi(t, final.Tallies); got != workers*iters {
		t.Fatalf("count = %d, want %d (no lost updates)", got, workers*iters)
	}
	if final.LockVersion != workers*iters {
		t.Fatalf("lock_version = %d, want %d", final.LockVersion, workers*iters)
	}
}

func mustAtoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("bad int %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestValidationMin(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	p := &Product{Name: "p"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	err := s.Save(&SKU{ProductID: p.ID, Quantity: -1})
	if !errors.Is(err, ErrValidation) {
		t.Fatalf("negative quantity = %v, want ErrValidation", err)
	}
	if n, _ := s.Count(&SKU{}, storage.All{}); n != 0 {
		t.Fatal("failed validation persisted the row")
	}
}

func TestValidationPresenceAndUnique(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	if err := s.Save(&Account{Email: ""}); !errors.Is(err, ErrValidation) {
		t.Fatalf("empty email = %v", err)
	}
	a := &Account{Email: "x@example.com"}
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	err := s.Save(&Account{Email: "x@example.com"})
	if !errors.Is(err, ErrValidation) || !strings.Contains(err.Error(), "taken") {
		t.Fatalf("dup email = %v", err)
	}
	// Updating the same record does not trip its own uniqueness.
	a.Email = "x@example.com"
	if err := s.Save(a); err != nil {
		t.Fatalf("self-update: %v", err)
	}
}

// TestFeralUniquenessValidationIsRacy demonstrates the §2.1 contrast the
// paper draws (after Bailis et al.): ORM uniqueness validation examines
// database state instead of isolating writes, so concurrent saves of the
// same email can both pass the check and insert duplicates. This is why
// invariant validation is not a substitute for coordination.
func TestFeralUniquenessValidationIsRacy(t *testing.T) {
	for attempt := 0; attempt < 25; attempt++ {
		eng := engine.New(engine.Config{
			Dialect: engine.Postgres, LockTimeout: 5 * time.Second,
			Net: sim.Latency{RTT: 100 * time.Microsecond},
		})
		reg := NewRegistry(eng, sim.RealClock{})
		reg.Register("accounts", &Account{}, WithIndex("email"), WithValidation(Unique{Col: "email"}))

		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = reg.Session().Save(&Account{Email: "dup@example.com"})
			}()
		}
		wg.Wait()
		n, err := reg.Session().Count(&Account{}, storage.Eq{Col: "email", Val: "dup@example.com"})
		if err != nil {
			t.Fatal(err)
		}
		if n > 1 {
			t.Logf("feral validation raced: %d rows share the 'unique' email (attempt %d)", n, attempt+1)
			return
		}
	}
	t.Skip("the validation race did not strike in 25 attempts")
}

func TestSessionWithTxnJoins(t *testing.T) {
	reg, _ := newTestRegistry(t)
	eng := reg.Engine()

	txn := eng.Begin(engine.IsolationDefault)
	s := reg.WithTxn(txn)
	p := &Product{Name: "draft"}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	// Not visible outside before commit.
	var probe Product
	if ok, _ := reg.Session().Find(&probe, p.ID); ok {
		t.Fatal("uncommitted save visible to other session")
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := reg.Session().Find(&probe, p.ID); ok {
		t.Fatal("rolled-back save visible")
	}
}

func TestRegisterRejectsBadTypes(t *testing.T) {
	reg, _ := newTestRegistry(t)
	assertPanics(t, func() { reg.Register("bad", Product{}) }, "non-pointer")
	type NoID struct {
		Name string `db:"name"`
	}
	assertPanics(t, func() { reg.Register("noid", &NoID{}) }, "missing id")
	type BadField struct {
		ID int64 `db:"id"`
		M  map[string]int
		C  complex128 `db:"c"`
	}
	assertPanics(t, func() { reg.Register("badfield", &BadField{}) }, "unsupported field")
}

func assertPanics(t *testing.T, fn func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestMetaOfErrors(t *testing.T) {
	reg, _ := newTestRegistry(t)
	s := reg.Session()
	type Unregistered struct {
		ID int64 `db:"id"`
	}
	if _, err := s.Find(&Unregistered{}, 1); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unregistered = %v", err)
	}
	if err := s.Save(42); err == nil {
		t.Fatal("Save(42) accepted")
	}
	var dest []Product
	if err := s.Where(dest, storage.All{}); err == nil { // not a pointer
		t.Fatal("Where(non-pointer) accepted")
	}
}

func TestUntaggedFieldsSkipped(t *testing.T) {
	reg, _ := newTestRegistry(t)
	// SKU.UpdatedAt has no db tag; the schema must not contain it.
	if reg.Engine().Schema("skus").HasColumn("updated_at") {
		t.Fatal("untagged field mapped")
	}
}
