package orm

import (
	"fmt"
	"reflect"

	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
)

// Session issues ORM operations. A session either wraps an explicit
// transaction (see Registry.WithTxn) or auto-commits each Save/Delete in its
// own database transaction — which is what the studied applications do by
// default, and why their ad hoc transactions exist at all.
type Session struct {
	reg *Registry
	txn *engine.Txn // nil = autocommit
	iso engine.Isolation
}

// Session opens an auto-committing session at the dialect's default
// isolation.
func (r *Registry) Session() *Session {
	return &Session{reg: r, iso: engine.IsolationDefault}
}

// WithTxn opens a session bound to an existing transaction: every operation
// joins it and nothing commits until the caller commits.
func (r *Registry) WithTxn(txn *engine.Txn) *Session {
	return &Session{reg: r, txn: txn}
}

// run executes fn in the bound transaction or an auto-commit one.
func (s *Session) run(fn func(*engine.Txn) error) error {
	if s.txn != nil {
		return fn(s.txn)
	}
	return s.reg.eng.Run(s.iso, fn)
}

// Find loads the record with the given id into dest (a registered model
// pointer), reporting whether it exists.
func (s *Session) Find(dest any, id int64) (bool, error) {
	m, sv, err := s.reg.metaOf(dest)
	if err != nil {
		return false, err
	}
	var row storage.Row
	err = s.run(func(t *engine.Txn) error {
		var err error
		row, err = t.SelectOne(m.Table, storage.ByPK(id))
		return err
	})
	if err != nil || row == nil {
		return false, err
	}
	m.fromRow(row, sv)
	return true, nil
}

// FindForUpdate is Find with SELECT ... FOR UPDATE row locking — the
// primitive Spree/Saleor/Redmine-style pessimistic ad hoc transactions
// reuse (§3.2.1). It only makes sense on a transaction-bound session.
func (s *Session) FindForUpdate(dest any, id int64) (bool, error) {
	m, sv, err := s.reg.metaOf(dest)
	if err != nil {
		return false, err
	}
	var row storage.Row
	err = s.run(func(t *engine.Txn) error {
		var err error
		row, err = t.SelectOne(m.Table, storage.ByPK(id), engine.ForUpdate)
		return err
	})
	if err != nil || row == nil {
		return false, err
	}
	m.fromRow(row, sv)
	return true, nil
}

// Where loads every record matching pred into dest, a pointer to a slice of
// a registered model type.
func (s *Session) Where(dest any, pred storage.Pred) error {
	dv := reflect.ValueOf(dest)
	if dv.Kind() != reflect.Ptr || dv.Elem().Kind() != reflect.Slice {
		return fmt.Errorf("orm: Where needs pointer to slice, got %T", dest)
	}
	elemType := dv.Elem().Type().Elem()
	m, ok := s.reg.models[elemType]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotRegistered, elemType)
	}
	var rows []storage.Row
	err := s.run(func(t *engine.Txn) error {
		var err error
		rows, err = t.Select(m.Table, pred)
		return err
	})
	if err != nil {
		return err
	}
	out := reflect.MakeSlice(dv.Elem().Type(), len(rows), len(rows))
	for i, row := range rows {
		m.fromRow(row, out.Index(i))
	}
	dv.Elem().Set(out)
	return nil
}

// Count returns the number of rows matching pred for the model type of
// proto.
func (s *Session) Count(proto any, pred storage.Pred) (int, error) {
	m, _, err := s.reg.metaOf(proto)
	if err != nil {
		return 0, err
	}
	var n int
	err = s.run(func(t *engine.Txn) error {
		rows, err := t.Select(m.Table, pred)
		n = len(rows)
		return err
	})
	return n, err
}

// Save persists obj. New records (id == 0) are inserted; existing records
// are updated. The whole save — validations, the row write, the ORM-generated
// touch cascade — runs in one database transaction, exactly like
// ActiveRecord's save (§3.1.1): the application cannot exclude the generated
// statements from the transaction scope.
//
// Models with a lock_version column get optimistic locking: the update is
// guarded on the in-memory version and ErrStaleObject is returned when the
// row moved (§3.2.2).
func (s *Session) Save(obj any) error {
	m, sv, err := s.reg.metaOf(obj)
	if err != nil {
		return err
	}
	return s.run(func(t *engine.Txn) error {
		if err := m.runValidations(t, s.reg, sv); err != nil {
			return err
		}
		now := s.reg.clock.Now()
		if m.updatedIdx >= 0 {
			sv.Field(m.updatedIdx).Set(reflect.ValueOf(now))
		}
		id := m.id(sv)
		if id == 0 {
			if m.createdIdx >= 0 {
				sv.Field(m.createdIdx).Set(reflect.ValueOf(now))
			}
			vals := m.toValues(sv)
			pk, err := t.Insert(m.Table, vals)
			if err != nil {
				return err
			}
			sv.Field(m.idIdx).SetInt(pk)
			return m.runTouches(t, s.reg, pk, sv)
		}

		vals := m.toValues(sv)
		if m.lockVerIdx >= 0 {
			// UPDATE ... SET lock_version = v+1 WHERE id = ? AND
			// lock_version = v — the ORM-assisted atomic
			// validate-and-commit.
			oldVer := sv.Field(m.lockVerIdx).Int()
			vals["lock_version"] = oldVer + 1
			ok, err := t.UpdateIf(m.Table, id, storage.Eq{Col: "lock_version", Val: oldVer}, vals)
			if err != nil {
				return err
			}
			if !ok {
				return ErrStaleObject
			}
			sv.Field(m.lockVerIdx).SetInt(oldVer + 1)
		} else {
			n, err := t.Update(m.Table, storage.ByPK(id), vals)
			if err != nil {
				return err
			}
			if n == 0 {
				return fmt.Errorf("%w: %s id=%d", ErrNotFound, m.Table, id)
			}
		}
		return m.runTouches(t, s.reg, id, sv)
	})
}

// Delete removes obj's row.
func (s *Session) Delete(obj any) error {
	m, sv, err := s.reg.metaOf(obj)
	if err != nil {
		return err
	}
	id := m.id(sv)
	return s.run(func(t *engine.Txn) error {
		_, err := t.Delete(m.Table, storage.ByPK(id))
		return err
	})
}

// Reload refreshes obj from the database.
func (s *Session) Reload(obj any) error {
	m, sv, err := s.reg.metaOf(obj)
	if err != nil {
		return err
	}
	ok, err := s.Find(obj, m.id(sv))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s id=%d", ErrNotFound, m.Table, m.id(sv))
	}
	return nil
}

// runTouches issues the ORM-generated parent updates.
func (m *Meta) runTouches(t *engine.Txn, reg *Registry, childID int64, sv reflect.Value) error {
	for _, touch := range m.touches {
		fkIdx := -1
		for _, f := range m.fields {
			if f.col == touch.FKColumn {
				fkIdx = f.idx
				break
			}
		}
		if fkIdx < 0 {
			return fmt.Errorf("orm: touch: %s has no column %s", m.Table, touch.FKColumn)
		}
		parentID := sv.Field(fkIdx).Int()
		if parentID == 0 {
			continue
		}
		parentSchema := reg.eng.Schema(touch.ParentTable)
		if parentSchema != nil && parentSchema.HasColumn("updated_at") {
			if _, err := t.Update(touch.ParentTable, storage.ByPK(parentID),
				map[string]storage.Value{"updated_at": reg.clock.Now()}); err != nil {
				return err
			}
		}
		if touch.Hook != nil {
			if err := touch.Hook(t, childID, parentID); err != nil {
				return err
			}
		}
	}
	return nil
}
