// Package orm implements the object-relational mapping layer the studied
// applications issue their database operations through: struct↔row mapping,
// Find/Where/Save/Delete, ORM-generated side statements (cascading
// updated_at touches — the hidden statements of §3.1.1), invariant
// validations (the "feral concurrency control" of Bailis et al.), and
// Active Record–style lock_version optimistic locking (§3.2.2).
package orm

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
)

// Errors reported by the ORM.
var (
	// ErrStaleObject is Active Record's StaleObjectError: the row's
	// lock_version moved underneath an optimistic save.
	ErrStaleObject = errors.New("orm: stale object (lock_version conflict)")
	// ErrValidation reports a failed invariant validation.
	ErrValidation = errors.New("orm: validation failed")
	// ErrNotRegistered reports use of an unregistered model type.
	ErrNotRegistered = errors.New("orm: model type not registered")
	// ErrNotFound is returned by MustFind-style helpers.
	ErrNotFound = errors.New("orm: record not found")
)

// Registry maps Go struct types to tables. Create with NewRegistry, register
// every model at boot, then open Sessions.
type Registry struct {
	eng    *engine.Engine
	clock  sim.Clock
	models map[reflect.Type]*Meta
}

// NewRegistry creates a registry bound to an engine. clock stamps
// created_at/updated_at columns; nil means wall clock.
func NewRegistry(eng *engine.Engine, clock sim.Clock) *Registry {
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &Registry{eng: eng, clock: clock, models: make(map[reflect.Type]*Meta)}
}

// Engine returns the backing engine.
func (r *Registry) Engine() *engine.Engine { return r.eng }

// fieldMeta maps one struct field to a column.
type fieldMeta struct {
	idx      int
	col      string
	typ      storage.ColType
	nullable bool // pointer-typed struct field
}

// Meta describes one registered model.
type Meta struct {
	Table  string
	Type   reflect.Type
	Schema *storage.Schema

	fields     []fieldMeta // excludes id
	idIdx      int
	lockVerCol string // "" when the model has no lock_version column
	lockVerIdx int
	createdIdx int // -1 when absent
	updatedIdx int

	validations []Validation
	touches     []TouchSpec
	indexes     []string
}

// TouchSpec declares an ORM-generated parent touch: saving the child updates
// the parent row's updated_at. Hook, when set, runs extra generated
// statements inside the same save transaction (e.g. Spree's
// product→categories join-table cascade).
type TouchSpec struct {
	ParentTable string
	FKColumn    string
	Hook        func(txn *engine.Txn, childID int64, parentID int64) error
}

// Option configures model registration.
type Option func(*Meta)

// WithValidation appends an invariant validation.
func WithValidation(v Validation) Option {
	return func(m *Meta) { m.validations = append(m.validations, v) }
}

// WithTouch appends a parent touch cascade.
func WithTouch(t TouchSpec) Option {
	return func(m *Meta) { m.touches = append(m.touches, t) }
}

// WithIndex adds a secondary index on the named column.
func WithIndex(col string) Option {
	return func(m *Meta) { m.indexes = append(m.indexes, col) }
}

// Register maps a struct type (passed as a pointer to its zero value) to a
// table and creates the table on the engine. Field mapping uses `db:"col"`
// tags; untagged exported fields are skipped. A field tagged db:"id" (or
// named ID of type int64) is the primary key. A column named lock_version
// enables optimistic locking; created_at/updated_at are auto-stamped.
func (r *Registry) Register(table string, proto any, opts ...Option) *Meta {
	t := reflect.TypeOf(proto)
	if t.Kind() != reflect.Ptr || t.Elem().Kind() != reflect.Struct {
		panic("orm: Register needs a pointer to struct")
	}
	st := t.Elem()
	m := &Meta{Table: table, Type: st, idIdx: -1, createdIdx: -1, updatedIdx: -1, lockVerIdx: -1}

	var cols []storage.Column
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		col := f.Tag.Get("db")
		if col == "" {
			if f.Name == "ID" && f.Type.Kind() == reflect.Int64 {
				col = "id"
			} else {
				continue
			}
		}
		if col == "id" {
			if f.Type.Kind() != reflect.Int64 {
				panic(fmt.Sprintf("orm: %s.%s: id must be int64", st.Name(), f.Name))
			}
			m.idIdx = i
			continue
		}
		ft := f.Type
		nullable := false
		if ft.Kind() == reflect.Ptr {
			ft = ft.Elem()
			nullable = true
		}
		ct, ok := goTypeToCol(ft)
		if !ok {
			panic(fmt.Sprintf("orm: %s.%s: unsupported field type %v", st.Name(), f.Name, f.Type))
		}
		m.fields = append(m.fields, fieldMeta{idx: i, col: col, typ: ct, nullable: nullable})
		cols = append(cols, storage.Column{Name: col, Type: ct, Nullable: nullable})
		switch col {
		case "lock_version":
			m.lockVerCol = col
			m.lockVerIdx = i
		case "created_at":
			m.createdIdx = i
		case "updated_at":
			m.updatedIdx = i
		}
	}
	if m.idIdx < 0 {
		panic(fmt.Sprintf("orm: %s has no id field", st.Name()))
	}
	for _, o := range opts {
		o(m)
	}
	m.Schema = storage.NewSchema(table, cols...)
	r.eng.CreateTable(m.Schema, m.indexes...)
	r.models[st] = m
	return m
}

func goTypeToCol(t reflect.Type) (storage.ColType, bool) {
	switch t.Kind() {
	case reflect.Int64:
		return storage.TInt, true
	case reflect.Float64:
		return storage.TFloat, true
	case reflect.String:
		return storage.TString, true
	case reflect.Bool:
		return storage.TBool, true
	case reflect.Struct:
		if t == reflect.TypeOf(time.Time{}) {
			return storage.TTime, true
		}
	}
	return 0, false
}

// metaOf resolves the Meta for a model pointer.
func (r *Registry) metaOf(obj any) (*Meta, reflect.Value, error) {
	v := reflect.ValueOf(obj)
	if v.Kind() != reflect.Ptr || v.Elem().Kind() != reflect.Struct {
		return nil, reflect.Value{}, fmt.Errorf("orm: need pointer to struct, got %T", obj)
	}
	m, ok := r.models[v.Elem().Type()]
	if !ok {
		return nil, reflect.Value{}, fmt.Errorf("%w: %T", ErrNotRegistered, obj)
	}
	return m, v.Elem(), nil
}

// toValues converts a struct value to column values (excluding id).
func (m *Meta) toValues(sv reflect.Value) map[string]storage.Value {
	out := make(map[string]storage.Value, len(m.fields))
	for _, f := range m.fields {
		fv := sv.Field(f.idx)
		if f.nullable {
			if fv.IsNil() {
				out[f.col] = nil
				continue
			}
			fv = fv.Elem()
		}
		out[f.col] = reflectToValue(fv, f.typ)
	}
	return out
}

func reflectToValue(fv reflect.Value, t storage.ColType) storage.Value {
	switch t {
	case storage.TInt:
		return fv.Int()
	case storage.TFloat:
		return fv.Float()
	case storage.TString:
		return fv.String()
	case storage.TBool:
		return fv.Bool()
	case storage.TTime:
		return fv.Interface().(time.Time)
	default:
		panic("orm: unhandled column type")
	}
}

// fromRow populates a struct value from a row.
func (m *Meta) fromRow(row storage.Row, sv reflect.Value) {
	sv.Field(m.idIdx).SetInt(row.PK())
	for _, f := range m.fields {
		raw := row.Get(m.Schema, f.col)
		fv := sv.Field(f.idx)
		if f.nullable {
			if raw == nil {
				fv.Set(reflect.Zero(fv.Type()))
				continue
			}
			p := reflect.New(fv.Type().Elem())
			setScalar(p.Elem(), raw, f.typ)
			fv.Set(p)
			continue
		}
		setScalar(fv, raw, f.typ)
	}
}

func setScalar(fv reflect.Value, raw storage.Value, t storage.ColType) {
	switch t {
	case storage.TInt:
		fv.SetInt(raw.(int64))
	case storage.TFloat:
		fv.SetFloat(raw.(float64))
	case storage.TString:
		fv.SetString(raw.(string))
	case storage.TBool:
		fv.SetBool(raw.(bool))
	case storage.TTime:
		fv.Set(reflect.ValueOf(raw.(time.Time)))
	}
}

// id reads the primary key of a model value.
func (m *Meta) id(sv reflect.Value) int64 { return sv.Field(m.idIdx).Int() }

// MetaFor returns the Meta of a registered model pointer. Layered tooling
// (internal/occkit's declared optimistic transactions) uses it to reach the
// table mapping without going through a Session.
func (r *Registry) MetaFor(obj any) (*Meta, error) {
	m, _, err := r.metaOf(obj)
	return m, err
}

// Load populates a registered model pointer from a raw row.
func (m *Meta) Load(row storage.Row, dest any) {
	m.fromRow(row, reflect.ValueOf(dest).Elem())
}

// LoadSlice populates dest (a pointer to a slice of the model type) from
// raw rows.
func (m *Meta) LoadSlice(rows []storage.Row, dest any) {
	dv := reflect.ValueOf(dest).Elem()
	out := reflect.MakeSlice(dv.Type(), len(rows), len(rows))
	for i, row := range rows {
		m.fromRow(row, out.Index(i))
	}
	dv.Set(out)
}

// IDOf returns the primary key of a registered model pointer.
func (m *Meta) IDOf(obj any) int64 {
	return m.id(reflect.ValueOf(obj).Elem())
}
