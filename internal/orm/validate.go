package orm

import (
	"fmt"
	"reflect"

	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
)

// Validation is one declared invariant, checked on every Save before the
// write — Active Record's validates keyword. Validations examine database
// state and the to-be-persisted object; they do not isolate concurrent
// operations (§2.1), which is why they are not a substitute for ad hoc
// transactions.
type Validation interface {
	// Check returns nil when the invariant holds for the object about to
	// be saved.
	Check(t *engine.Txn, m *Meta, sv reflect.Value) error
}

// runValidations runs every declared validation.
func (m *Meta) runValidations(t *engine.Txn, _ *Registry, sv reflect.Value) error {
	for _, v := range m.validations {
		if err := v.Check(t, m, sv); err != nil {
			return err
		}
	}
	return nil
}

// fieldByCol locates the struct field backing col.
func (m *Meta) fieldByCol(col string) (fieldMeta, bool) {
	for _, f := range m.fields {
		if f.col == col {
			return f, true
		}
	}
	return fieldMeta{}, false
}

// colValue extracts the column's value from the struct.
func (m *Meta) colValue(sv reflect.Value, col string) (storage.Value, error) {
	f, ok := m.fieldByCol(col)
	if !ok {
		return nil, fmt.Errorf("orm: validation references unknown column %q on %s", col, m.Table)
	}
	fv := sv.Field(f.idx)
	if f.nullable {
		if fv.IsNil() {
			return nil, nil
		}
		fv = fv.Elem()
	}
	return reflectToValue(fv, f.typ), nil
}

// Presence validates that a column is non-NULL and, for strings, non-empty
// (validates ... presence: true).
type Presence struct {
	Col string
}

// Check implements Validation.
func (p Presence) Check(_ *engine.Txn, m *Meta, sv reflect.Value) error {
	v, err := m.colValue(sv, p.Col)
	if err != nil {
		return err
	}
	if v == nil {
		return fmt.Errorf("%w: %s.%s must be present", ErrValidation, m.Table, p.Col)
	}
	if s, isStr := v.(string); isStr && s == "" {
		return fmt.Errorf("%w: %s.%s must be present", ErrValidation, m.Table, p.Col)
	}
	return nil
}

// Min validates that an integer column is at least Min (validates ...
// numericality: {greater_than_or_equal_to: n}). The non-negative stock
// invariant of the e-commerce applications is Min{Col: "quantity", Min: 0}.
type Min struct {
	Col string
	Min int64
}

// Check implements Validation.
func (mn Min) Check(_ *engine.Txn, m *Meta, sv reflect.Value) error {
	v, err := m.colValue(sv, mn.Col)
	if err != nil {
		return err
	}
	iv, ok := v.(int64)
	if !ok {
		return fmt.Errorf("%w: %s.%s is not an integer", ErrValidation, m.Table, mn.Col)
	}
	if iv < mn.Min {
		return fmt.Errorf("%w: %s.%s = %d below minimum %d", ErrValidation, m.Table, mn.Col, iv, mn.Min)
	}
	return nil
}

// Unique validates column uniqueness by querying for another row with the
// same value (validates ... uniqueness: true). This check is famously racy
// under concurrency — it reads database state rather than isolating the
// write — which is precisely the "feral CC" weakness the paper contrasts ad
// hoc transactions against (§2.1).
type Unique struct {
	Col string
}

// Check implements Validation.
func (u Unique) Check(t *engine.Txn, m *Meta, sv reflect.Value) error {
	v, err := m.colValue(sv, u.Col)
	if err != nil {
		return err
	}
	rows, err := t.Select(m.Table, storage.Eq{Col: u.Col, Val: v})
	if err != nil {
		return err
	}
	self := m.id(sv)
	for _, row := range rows {
		if row.PK() != self {
			return fmt.Errorf("%w: %s.%s = %s already taken", ErrValidation, m.Table, u.Col, storage.FormatValue(v))
		}
	}
	return nil
}
