// Package webstack is the minimal HTTP layer the benchmark harness drives
// application APIs through, mirroring the paper's setup ("we developed test
// clients to stress chosen application APIs with valid HTTP requests",
// §5). Handlers take URL parameters and return an error; responses are
// small JSON documents over a loopback listener.
package webstack

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// HandlerFunc processes one API call.
type HandlerFunc func(params url.Values) error

// Server hosts application APIs on a loopback listener.
type Server struct {
	mux      *http.ServeMux
	listener net.Listener
	httpSrv  *http.Server
	baseURL  string
}

// NewServer creates an unstarted server.
func NewServer() *Server {
	return &Server{mux: http.NewServeMux()}
}

// Handle registers an API under the given path (e.g. "/checkout").
func (s *Server) Handle(path string, h HandlerFunc) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if err := r.ParseForm(); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if err := h(r.Form); err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// Start begins serving on an ephemeral loopback port.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.listener = ln
	s.baseURL = "http://" + ln.Addr().String()
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

// BaseURL returns the server's address (valid after Start).
func (s *Server) BaseURL() string { return s.baseURL }

// Client issues API calls against a Server.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server.
func (s *Server) NewClient() *Client {
	return &Client{
		base: s.baseURL,
		http: &http.Client{Timeout: 30 * time.Second, Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}},
	}
}

// ErrAPIConflict is returned when the API reported a coordination conflict
// (HTTP 409).
var ErrAPIConflict = errors.New("webstack: api conflict")

// Call invokes the API at path with the given parameters.
func (c *Client) Call(path string, params url.Values) error {
	resp, err := c.http.PostForm(c.base+path, params)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		var body struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return fmt.Errorf("%w: %s", ErrAPIConflict, body.Error)
	default:
		return fmt.Errorf("webstack: %s returned %d", path, resp.StatusCode)
	}
}

// Int64 parses an int64 parameter.
func Int64(params url.Values, key string) (int64, error) {
	v := params.Get(key)
	if v == "" {
		return 0, fmt.Errorf("webstack: missing parameter %q", key)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("webstack: parameter %q: %v", key, err)
	}
	return n, nil
}

// Params builds url.Values from alternating key/value pairs.
func Params(kv ...string) url.Values {
	out := url.Values{}
	for i := 0; i+1 < len(kv); i += 2 {
		out.Set(kv[i], kv[i+1])
	}
	return out
}
