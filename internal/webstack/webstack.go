// Package webstack is the minimal HTTP layer the benchmark harness drives
// application APIs through, mirroring the paper's setup ("we developed test
// clients to stress chosen application APIs with valid HTTP requests",
// §5). Handlers take URL parameters and return an error; responses are
// small JSON documents over a loopback listener.
package webstack

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"adhoctx/internal/obs"
)

// HandlerFunc processes one API call.
type HandlerFunc func(params url.Values) error

// Server hosts application APIs on a loopback listener. Every server exposes
// /metrics (Prometheus text exposition of the wired registry) and
// /debug/txns (in-flight transaction spans); both return 404 until WireObs
// installs a registry.
//
// A Server is single-use: Start at most once, and never reuse it after
// Close — the listener and its ephemeral port are gone, so a second Start
// would bind a different address than BaseURL/Addr ever reported.
type Server struct {
	// ShutdownTimeout bounds how long Close waits for in-flight requests to
	// drain before forcing connections closed (default 5s).
	ShutdownTimeout time.Duration

	mux      *http.ServeMux
	listener net.Listener
	httpSrv  *http.Server
	baseURL  string
	reg      atomic.Pointer[obs.Registry]
}

// NewServer creates an unstarted server.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.serveMetrics)
	s.mux.HandleFunc("/debug/txns", s.serveTxns)
	return s
}

// WireObs installs the registry backing /metrics, /debug/txns, and the
// per-route request middleware. May be called before or after Start; a nil
// registry detaches.
func (s *Server) WireObs(reg *obs.Registry) {
	s.reg.Store(reg)
}

// serveMetrics renders the wired registry in Prometheus text format.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.reg.Load()
	if reg == nil {
		http.Error(w, "webstack: no obs registry wired", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WriteText(w)
}

// serveTxns dumps the in-flight transaction spans as JSON.
func (s *Server) serveTxns(w http.ResponseWriter, r *http.Request) {
	reg := s.reg.Load()
	if reg == nil {
		http.Error(w, "webstack: no obs registry wired", http.StatusNotFound)
		return
	}
	spans := reg.Spans().Inflight()
	now := time.Now()
	type txnDump struct {
		obs.Span
		AgeMS float64 `json:"age_ms"`
	}
	out := make([]txnDump, 0, len(spans))
	for _, sp := range spans {
		out = append(out, txnDump{Span: sp, AgeMS: float64(sp.Age(now)) / float64(time.Millisecond)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"inflight": len(out), "txns": out})
}

// Handle registers an API under the given path (e.g. "/checkout"). Requests
// feed the wired registry's per-route latency histogram and status counters.
func (s *Server) Handle(path string, h HandlerFunc) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK
		if err := r.ParseForm(); err != nil {
			code = http.StatusBadRequest
			writeJSON(w, code, map[string]string{"error": err.Error()})
		} else if err := h(r.Form); err != nil {
			code = http.StatusConflict
			writeJSON(w, code, map[string]string{"error": err.Error()})
		} else {
			writeJSON(w, code, map[string]string{"status": "ok"})
		}
		if reg := s.reg.Load(); reg != nil {
			reg.Histogram(fmt.Sprintf("http_request_seconds{route=%q}", path)).Since(start)
			reg.Counter(fmt.Sprintf("http_requests_total{route=%q,code=\"%d\"}", path, code)).Inc()
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// Start begins serving on an ephemeral loopback port. The server carries
// header-read and idle timeouts so a stalled or silent client cannot pin a
// connection goroutine forever.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.listener = ln
	s.baseURL = "http://" + ln.Addr().String()
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Close shuts the server down gracefully: it stops accepting connections and
// drains in-flight requests for up to ShutdownTimeout before forcing the
// remaining connections closed.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	d := s.ShutdownTimeout
	if d <= 0 {
		d = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		// Drain window expired (or context error): fall back to the abrupt
		// close so Close never hangs.
		return s.httpSrv.Close()
	}
	return nil
}

// BaseURL returns the server's base URL (valid after Start).
func (s *Server) BaseURL() string { return s.baseURL }

// Addr returns the bound listen address (valid after Start) — the supported
// way to learn the ephemeral port, rather than reaching into the listener.
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

// Client issues API calls against a Server.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server.
func (s *Server) NewClient() *Client {
	return &Client{
		base: s.baseURL,
		http: &http.Client{Timeout: 30 * time.Second, Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}},
	}
}

// ErrAPIConflict is returned when the API reported a coordination conflict
// (HTTP 409).
var ErrAPIConflict = errors.New("webstack: api conflict")

// Call invokes the API at path with the given parameters.
func (c *Client) Call(path string, params url.Values) error {
	resp, err := c.http.PostForm(c.base+path, params)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		var body struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return fmt.Errorf("%w: %s", ErrAPIConflict, body.Error)
	default:
		return fmt.Errorf("webstack: %s returned %d", path, resp.StatusCode)
	}
}

// Int64 parses an int64 parameter.
func Int64(params url.Values, key string) (int64, error) {
	v := params.Get(key)
	if v == "" {
		return 0, fmt.Errorf("webstack: missing parameter %q", key)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("webstack: parameter %q: %v", key, err)
	}
	return n, nil
}

// Params builds url.Values from alternating key/value pairs.
func Params(kv ...string) url.Values {
	out := url.Values{}
	for i := 0; i+1 < len(kv); i += 2 {
		out.Set(kv[i], kv[i+1])
	}
	return out
}
