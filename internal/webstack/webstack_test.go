package webstack

import (
	"errors"
	"fmt"
	"net/url"
	"sync"
	"testing"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := NewServer()
	var got int64
	s.Handle("/checkout", func(params url.Values) error {
		n, err := Int64(params, "sku")
		if err != nil {
			return err
		}
		got = n
		return nil
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	c := s.NewClient()
	if err := c.Call("/checkout", Params("sku", "42")); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("handler saw sku=%d", got)
	}
}

func TestConflictPropagates(t *testing.T) {
	s := startServer(t)
	s.Handle("/pay", func(url.Values) error { return fmt.Errorf("insufficient stock") })
	err := s.NewClient().Call("/pay", nil)
	if !errors.Is(err, ErrAPIConflict) {
		t.Fatalf("err = %v, want ErrAPIConflict", err)
	}
}

func TestMissingAndBadParams(t *testing.T) {
	if _, err := Int64(url.Values{}, "x"); err == nil {
		t.Fatal("missing param accepted")
	}
	if _, err := Int64(url.Values{"x": {"abc"}}, "x"); err == nil {
		t.Fatal("bad param accepted")
	}
	p := Params("a", "1", "b", "2")
	if p.Get("a") != "1" || p.Get("b") != "2" {
		t.Fatalf("Params = %v", p)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	var mu sync.Mutex
	count := 0
	s.Handle("/inc", func(url.Values) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.NewClient()
			for j := 0; j < 10; j++ {
				if err := c.Call("/inc", nil); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if count != 80 {
		t.Fatalf("count = %d", count)
	}
}

func TestUnknownPath(t *testing.T) {
	s := startServer(t)
	if err := s.NewClient().Call("/nope", nil); err == nil {
		t.Fatal("unknown path accepted")
	}
}
