package webstack

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"adhoctx/internal/obs"
)

func TestMetricsEndpointRequiresRegistry(t *testing.T) {
	s := startServer(t)
	for _, path := range []string{"/metrics", "/debug/txns"} {
		resp, err := http.Get(s.BaseURL() + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without registry: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestMetricsEndpointExposesRouteSeries(t *testing.T) {
	s := startServer(t)
	reg := obs.NewRegistry()
	s.WireObs(reg)
	s.Handle("/checkout", func(url.Values) error { return nil })

	c := s.NewClient()
	for i := 0; i < 5; i++ {
		if err := c.Call("/checkout", nil); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(s.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`http_requests_total{route="/checkout",code="200"} 5`,
		`http_request_seconds_count{route="/checkout"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestMetricsCountsErrorCodes(t *testing.T) {
	s := startServer(t)
	reg := obs.NewRegistry()
	s.WireObs(reg)
	s.Handle("/pay", func(url.Values) error { return ErrAPIConflict })

	_ = s.NewClient().Call("/pay", nil)

	if got := reg.Counter(`http_requests_total{route="/pay",code="409"}`).Value(); got != 1 {
		t.Fatalf("409 counter = %d, want 1", got)
	}
}

func TestDebugTxnsEndpoint(t *testing.T) {
	s := startServer(t)
	reg := obs.NewRegistry()
	s.WireObs(reg)
	reg.Spans().Observe(obs.TxnEvent{TxnID: 7, Kind: "begin", Begin: true, Tag: "checkout"})

	resp, err := http.Get(s.BaseURL() + "/debug/txns")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/txns status %d", resp.StatusCode)
	}
	var out struct {
		Inflight int `json:"inflight"`
		Txns     []struct {
			TxnID uint64  `json:"txn_id"`
			Tag   string  `json:"tag"`
			AgeMS float64 `json:"age_ms"`
		} `json:"txns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Inflight != 1 || len(out.Txns) != 1 {
		t.Fatalf("inflight = %d, txns = %d", out.Inflight, len(out.Txns))
	}
	if out.Txns[0].TxnID != 7 || out.Txns[0].Tag != "checkout" {
		t.Fatalf("txn dump = %+v", out.Txns[0])
	}
	if out.Txns[0].AgeMS < 0 {
		t.Fatalf("age_ms = %v", out.Txns[0].AgeMS)
	}
}

func TestCloseDrainsInflightRequests(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.Handle("/slow", func(url.Values) error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- s.NewClient().Call("/slow", nil) }()
	<-entered

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	// Close must wait for the in-flight request, not cut it off.
	select {
	case <-closed:
		t.Fatal("Close returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", err)
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after requests drained")
	}
}

func TestCloseForcesAfterTimeout(t *testing.T) {
	s := NewServer()
	s.ShutdownTimeout = 50 * time.Millisecond
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.Handle("/stuck", func(url.Values) error {
		once.Do(func() { close(entered) })
		<-block
		return nil
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer close(block)

	go func() { _ = s.NewClient().Call("/stuck", nil) }()
	<-entered

	done := make(chan struct{})
	go func() { _ = s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung past ShutdownTimeout on a stuck handler")
	}
}
