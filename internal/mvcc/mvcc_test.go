package mvcc

import (
	"testing"
	"testing/quick"

	"adhoctx/internal/storage"
)

func row(vals ...storage.Value) storage.Row { return storage.Row(vals) }

func TestVisibilityBasics(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)

	// Older snapshot (before csn 5) sees nothing.
	if got := c.Visible(Snapshot{AsOf: 4, Self: 99}); got != nil {
		t.Fatalf("pre-commit snapshot saw %v", got)
	}
	// At or after csn 5 sees v1.
	if got := c.Visible(Snapshot{AsOf: 5, Self: 99}); got == nil || got[1] != "v1" {
		t.Fatalf("snapshot at 5 saw %v", got)
	}
}

func TestOwnWritesVisibleUncommitted(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)
	c.Prepend(row(int64(1), "v2"), false, 42)

	// Writer sees its own uncommitted version.
	if got := c.Visible(Snapshot{AsOf: 5, Self: 42}); got == nil || got[1] != "v2" {
		t.Fatalf("writer saw %v", got)
	}
	// Others still see v1.
	if got := c.Visible(Snapshot{AsOf: 5, Self: 7}); got == nil || got[1] != "v1" {
		t.Fatalf("reader saw %v", got)
	}
}

func TestCommitStampsVersions(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)
	c.Prepend(row(int64(1), "v2"), false, 42)
	c.Commit(42, 9)

	if got := c.Visible(Snapshot{AsOf: 9, Self: 7}); got == nil || got[1] != "v2" {
		t.Fatalf("post-commit reader saw %v", got)
	}
	if got := c.Visible(Snapshot{AsOf: 8, Self: 7}); got == nil || got[1] != "v1" {
		t.Fatalf("older snapshot saw %v", got)
	}
}

func TestRollbackRestoresPriorVersion(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)
	c.Prepend(row(int64(1), "v2"), false, 42)
	if empty := c.Rollback(42); empty {
		t.Fatal("rollback reported empty chain")
	}
	if got := c.Visible(Snapshot{AsOf: 100, Self: 42}); got == nil || got[1] != "v1" {
		t.Fatalf("after rollback saw %v", got)
	}
}

func TestRollbackOnePopsSingleVersion(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)
	c.Prepend(row(int64(1), "v2"), false, 42)
	c.Prepend(row(int64(1), "v3"), false, 42)
	if empty := c.RollbackOne(42); empty {
		t.Fatal("chain reported empty")
	}
	// Only v3 is gone; the writer still sees its v2.
	if got := c.Visible(Snapshot{AsOf: 5, Self: 42}); got == nil || got[1] != "v2" {
		t.Fatalf("after RollbackOne saw %v", got)
	}
	// RollbackOne on a committed head is a no-op.
	c.Commit(42, 9)
	if empty := c.RollbackOne(42); empty {
		t.Fatal("committed chain reported empty")
	}
	if got := c.Visible(Snapshot{AsOf: 9, Self: 7}); got == nil || got[1] != "v2" {
		t.Fatalf("committed head disturbed: %v", got)
	}
}

func TestRollbackFreshInsertEmptiesChain(t *testing.T) {
	c := &Chain{}
	c.Prepend(row(int64(1), "v1"), false, 42)
	if empty := c.Rollback(42); !empty {
		t.Fatal("rollback of sole uncommitted insert should empty the chain")
	}
	if c.Head() != nil {
		t.Fatal("head not nil after emptying rollback")
	}
}

func TestTombstoneVisibility(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)
	c.Prepend(nil, true, 42)
	c.Commit(42, 9)

	if got := c.Visible(Snapshot{AsOf: 9, Self: 7}); got != nil {
		t.Fatalf("deleted row visible: %v", got)
	}
	if got := c.Visible(Snapshot{AsOf: 8, Self: 7}); got == nil {
		t.Fatal("old snapshot should still see the row")
	}
	v := c.VisibleVersion(Snapshot{AsOf: 9, Self: 7})
	if v == nil || !v.Deleted {
		t.Fatalf("VisibleVersion should surface the tombstone, got %+v", v)
	}
}

func TestFirstCommitterWinsConflict(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)

	snap := Snapshot{AsOf: 5, Self: 100} // taken before the concurrent commit
	c.Prepend(row(int64(1), "v2"), false, 200)
	c.Commit(200, 8)

	if !c.ConflictsWith(snap) {
		t.Fatal("concurrent committed write should conflict with the old snapshot")
	}
	if c.ConflictsWith(Snapshot{AsOf: 8, Self: 100}) {
		t.Fatal("snapshot taken after the commit should not conflict")
	}
	// A transaction never conflicts with its own committed write.
	if c.ConflictsWith(Snapshot{AsOf: 5, Self: 200}) {
		t.Fatal("writer conflicts with itself")
	}
}

func TestPrependPanicsOnWriteWriteRace(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)
	c.Prepend(row(int64(1), "v2"), false, 42)
	defer func() {
		if recover() == nil {
			t.Fatal("second uncommitted writer did not panic")
		}
	}()
	c.Prepend(row(int64(1), "v3"), false, 43)
}

func TestLatestCommittedSkipsUncommitted(t *testing.T) {
	c := NewChain(row(int64(1), "v1"), 10, 5)
	c.Prepend(row(int64(1), "v2"), false, 42)
	lc := c.LatestCommitted()
	if lc == nil || lc.Row[1] != "v1" {
		t.Fatalf("LatestCommitted = %+v", lc)
	}
	if c.Depth() != 2 {
		t.Fatalf("Depth = %d", c.Depth())
	}
}

// TestVisibilityMonotoneProperty: raising AsOf never makes a previously
// visible row invisible (until a tombstone commits), and the visible version
// is always the newest one with CSN ≤ AsOf.
func TestVisibilityMonotoneProperty(t *testing.T) {
	f := func(nWrites uint8) bool {
		n := int(nWrites%10) + 1
		c := NewChain(row(int64(0)), 1, 1)
		// Commit n sequential updates at CSNs 2..n+1.
		for i := 0; i < n; i++ {
			txn := uint64(100 + i)
			c.Prepend(row(int64(i+1)), false, txn)
			c.Commit(txn, uint64(i+2))
		}
		for asOf := uint64(1); asOf <= uint64(n+1); asOf++ {
			got := c.Visible(Snapshot{AsOf: asOf, Self: 9999})
			if got == nil {
				return false
			}
			want := int64(asOf - 1)
			if got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
