// Package mvcc provides multi-version row storage: per-row version chains
// stamped with transaction IDs and commit sequence numbers, plus snapshot
// visibility. Both engine dialects read through snapshots — MySQL's
// "consistent reads" and PostgreSQL's MVCC are the same machinery with
// different snapshot lifetimes and write-conflict policies (see
// internal/engine).
//
// Chains are not internally synchronised; the engine serialises chain access
// under its store mutex.
package mvcc

import (
	"fmt"

	"adhoctx/internal/storage"
)

// Version is one row version. A nil Row with Deleted=true is a tombstone.
type Version struct {
	// Row is the version's data (nil for tombstones).
	Row storage.Row
	// Deleted marks tombstones.
	Deleted bool
	// TxnID is the transaction that wrote the version.
	TxnID uint64
	// CSN is the writer's commit sequence number, or 0 while uncommitted.
	CSN uint64
	// Prev is the next older version.
	Prev *Version
}

// Snapshot fixes what a reader sees: every version committed with CSN ≤ AsOf
// plus the reader's own uncommitted writes.
type Snapshot struct {
	// AsOf is the newest commit sequence number visible to the snapshot.
	AsOf uint64
	// Self is the reading transaction's ID; its own writes are visible.
	Self uint64
}

// Chain is one row's version history, newest first.
type Chain struct {
	head *Version
}

// NewChain returns a chain whose first version was written by txnID and is
// already committed at csn.
func NewChain(row storage.Row, txnID, csn uint64) *Chain {
	return &Chain{head: &Version{Row: row, TxnID: txnID, CSN: csn}}
}

// Head returns the newest version (committed or not), or nil on an empty
// chain.
func (c *Chain) Head() *Version { return c.head }

// Prepend installs a new uncommitted version written by txnID. The engine
// must hold the row's X lock, so at most one uncommitted version exists per
// chain at a time; Prepend panics if that invariant is violated.
func (c *Chain) Prepend(row storage.Row, deleted bool, txnID uint64) *Version {
	if c.head != nil && c.head.CSN == 0 && c.head.TxnID != txnID {
		panic(fmt.Sprintf("mvcc: write-write race on chain: txn %d over uncommitted txn %d", txnID, c.head.TxnID))
	}
	v := &Version{Row: row, Deleted: deleted, TxnID: txnID, Prev: c.head}
	c.head = v
	return v
}

// Visible returns the newest version visible to snap, or nil when the row
// does not exist for this snapshot (never inserted, or only newer versions).
// A visible tombstone also returns nil — from the reader's viewpoint the row
// is gone; use VisibleVersion when the tombstone itself matters.
func (c *Chain) Visible(snap Snapshot) storage.Row {
	v := c.VisibleVersion(snap)
	if v == nil || v.Deleted {
		return nil
	}
	return v.Row
}

// VisibleVersion returns the newest version visible to snap including
// tombstones, or nil.
func (c *Chain) VisibleVersion(snap Snapshot) *Version {
	for v := c.head; v != nil; v = v.Prev {
		if v.visibleTo(snap) {
			return v
		}
	}
	return nil
}

func (v *Version) visibleTo(snap Snapshot) bool {
	if v.TxnID == snap.Self {
		return true
	}
	return v.CSN != 0 && v.CSN <= snap.AsOf
}

// LatestCommitted returns the newest committed version, or nil.
func (c *Chain) LatestCommitted() *Version {
	for v := c.head; v != nil; v = v.Prev {
		if v.CSN != 0 {
			return v
		}
	}
	return nil
}

// Commit stamps every uncommitted version written by txnID with csn.
func (c *Chain) Commit(txnID, csn uint64) {
	for v := c.head; v != nil && v.CSN == 0; v = v.Prev {
		if v.TxnID == txnID {
			v.CSN = csn
		}
	}
}

// Rollback removes uncommitted versions written by txnID from the head of
// the chain and reports whether the chain is now empty (the row never
// existed committed — the engine unlinks it).
func (c *Chain) Rollback(txnID uint64) (empty bool) {
	for c.head != nil && c.head.CSN == 0 && c.head.TxnID == txnID {
		c.head = c.head.Prev
	}
	return c.head == nil
}

// RollbackOne removes exactly the head version if it is an uncommitted write
// by txnID, reporting whether the chain is now empty. The engine unwinds its
// undo log one entry at a time (savepoints roll back a suffix of the
// transaction's writes, not all of them), so it needs single-step pops.
func (c *Chain) RollbackOne(txnID uint64) (empty bool) {
	if c.head != nil && c.head.CSN == 0 && c.head.TxnID == txnID {
		c.head = c.head.Prev
	}
	return c.head == nil
}

// ConflictsWith reports whether a write by a transaction holding snap would
// violate first-committer-wins: some other transaction committed a newer
// version after the snapshot was taken. PostgreSQL's Repeatable Read aborts
// such writers with a serialization failure (§3.1.1).
func (c *Chain) ConflictsWith(snap Snapshot) bool {
	latest := c.LatestCommitted()
	return latest != nil && latest.CSN > snap.AsOf && latest.TxnID != snap.Self
}

// Depth returns the number of versions in the chain (diagnostics).
func (c *Chain) Depth() int {
	n := 0
	for v := c.head; v != nil; v = v.Prev {
		n++
	}
	return n
}
