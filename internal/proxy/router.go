package proxy

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/wire"
)

// PartitionNodes is one partition's serving topology: the writable leader
// and its read-only followers, by client address.
type PartitionNodes struct {
	Leader    string
	Followers []string
}

// RouterConfig tunes the partition-aware router.
type RouterConfig struct {
	// Partitions is the boot topology, one entry per partition. Primary
	// keys map onto indices of this slice via wire.PartitionOf.
	Partitions []PartitionNodes
	// ClientConfig is the template for per-node clients (Addr is
	// overwritten per node). Its Dial seam and RetryConnLost policy apply
	// to every routed connection.
	ClientConfig client.Config
	// MaxRetries bounds whole-transaction attempts per call (default 5).
	MaxRetries int
	// MaxRedirects bounds NOT_LEADER redirects within one call (default 4).
	// Redirects don't consume retry attempts: following a leader hint is
	// progress, not failure.
	MaxRedirects int
	// BackoffBase scales the jittered backoff between attempts (default
	// 200µs, matching the client).
	BackoffBase time.Duration
}

// Router is the shard-aware routing layer over the replicated serving tier.
// It owns one pooled client per node address, maps primary keys to
// partitions with the same static hash every node uses, sends write
// transactions to partition leaders (following typed NOT_LEADER redirects
// transparently), and serves read-only transactions from followers under a
// bounded-staleness guarantee: a follower is only used if its applied LSN
// has reached the partition's last commit LSN observed through this router,
// so a caller always reads its own writes.
//
// Router is safe for concurrent use.
type Router struct {
	cfg RouterConfig

	mu      sync.Mutex
	parts   []PartitionNodes
	clients map[string]*client.Client
	closed  bool

	lastLSN []atomic.Uint64 // per-partition: highest commit LSN seen
	rr      []atomic.Uint64 // per-partition: follower round-robin cursor

	redirects atomic.Int64
	fallbacks atomic.Int64
}

// NewRouter builds a router over the given topology.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 200 * time.Microsecond
	}
	parts := make([]PartitionNodes, len(cfg.Partitions))
	for i, p := range cfg.Partitions {
		parts[i] = PartitionNodes{Leader: p.Leader, Followers: append([]string(nil), p.Followers...)}
	}
	return &Router{
		cfg:     cfg,
		parts:   parts,
		clients: make(map[string]*client.Client),
		lastLSN: make([]atomic.Uint64, len(parts)),
		rr:      make([]atomic.Uint64, len(parts)),
	}
}

// Partitions returns the partition count.
func (r *Router) Partitions() uint32 { return uint32(len(r.parts)) }

// PartitionOf maps a primary key to its owning partition.
func (r *Router) PartitionOf(pk int64) uint32 { return wire.PartitionOf(pk, r.Partitions()) }

// Leader returns the current leader address for a partition.
func (r *Router) Leader(part uint32) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.parts[part].Leader
}

// UpdateLeader installs a new leader address for a partition (failover, or
// a NOT_LEADER hint). The previous leader, if still listed as a follower,
// is left there; the supervisor owns follower-set edits.
func (r *Router) UpdateLeader(part uint32, addr string) {
	r.mu.Lock()
	r.parts[part].Leader = addr
	r.mu.Unlock()
}

// SetFollowers replaces a partition's follower set.
func (r *Router) SetFollowers(part uint32, addrs []string) {
	r.mu.Lock()
	r.parts[part].Followers = append([]string(nil), addrs...)
	r.mu.Unlock()
}

// LastLSN returns the partition's read-your-writes floor: the highest
// commit LSN a transaction routed through this router has observed.
func (r *Router) LastLSN(part uint32) uint64 { return r.lastLSN[part].Load() }

// Redirects returns how many NOT_LEADER redirects were followed.
func (r *Router) Redirects() int64 { return r.redirects.Load() }

// LeaderReadFallbacks returns how many read-only transactions fell back to
// the leader because no follower satisfied the staleness bound.
func (r *Router) LeaderReadFallbacks() int64 { return r.fallbacks.Load() }

// Close closes every node client.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	clients := make([]*client.Client, 0, len(r.clients))
	for _, c := range r.clients {
		clients = append(clients, c)
	}
	r.clients = make(map[string]*client.Client)
	r.mu.Unlock()
	for _, c := range clients {
		_ = c.Close()
	}
}

// clientFor returns (lazily creating) the pooled client for a node address.
func (r *Router) clientFor(addr string) *client.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clients[addr]; ok {
		return c
	}
	cfg := r.cfg.ClientConfig
	cfg.Addr = addr
	c := client.New(cfg)
	if !r.closed {
		r.clients[addr] = c
	}
	return c
}

// noteCommit advances the partition's read-your-writes floor.
func (r *Router) noteCommit(part uint32, lsn uint64) {
	for {
		cur := r.lastLSN[part].Load()
		if lsn <= cur || r.lastLSN[part].CompareAndSwap(cur, lsn) {
			return
		}
	}
}

func (r *Router) backoff(i int) {
	step := int64(i + 1)
	if step > 8 {
		step = 8
	}
	base := r.cfg.BackoffBase
	time.Sleep(base/2 + time.Duration(rand.Int63n(step*int64(base))))
}

// notLeader extracts the leader hint from a CodeNotLeader error.
func notLeader(err error) (hint string, ok bool) {
	var we *wire.Error
	if errors.As(err, &we) && we.Code == wire.CodeNotLeader {
		return we.Msg, true
	}
	return "", false
}

// wrongPartition reports a CodeWrongPartition rejection.
func wrongPartition(err error) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Code == wire.CodeWrongPartition
}

func staleRead(err error) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Code == wire.CodeStaleRead
}

// retryable mirrors the client's whole-transaction retry policy.
func (r *Router) retryable(err error) bool {
	if wire.IsRetryable(err) || engine.IsRetryable(err) || errors.Is(err, engine.ErrTxnDone) {
		return true
	}
	if !r.cfg.ClientConfig.RetryConnLost || errors.Is(err, client.ErrClosed) {
		return false
	}
	var we *wire.Error
	if errors.As(err, &we) {
		return we.Code == wire.CodeConnLost
	}
	return true
}

// RunTxnPK routes a write transaction by the primary key it is keyed on.
func (r *Router) RunTxnPK(pk int64, iso engine.Isolation, fn func(*client.Txn) error) error {
	return r.RunTxn(r.PartitionOf(pk), iso, fn)
}

// RunTxn runs fn as a write transaction on the partition's leader,
// committing on success. Typed NOT_LEADER rejections are retried
// transparently against the hinted leader (or the updated topology);
// retryable engine codes restart the transaction with backoff, like
// client.RunTxn. A WRONG_PARTITION rejection is returned as-is — it means
// the router's topology and the node's partition assignment disagree, which
// re-running cannot fix.
func (r *Router) RunTxn(part uint32, iso engine.Isolation, fn func(*client.Txn) error) error {
	if int(part) >= len(r.parts) {
		return fmt.Errorf("proxy: partition %d out of range (%d partitions)", part, len(r.parts))
	}
	var err error
	redirects := 0
	for attempt := 0; attempt < r.cfg.MaxRetries; attempt++ {
		var lsn uint64
		lsn, err = r.runWriteOnce(r.clientFor(r.Leader(part)), iso, fn)
		if err == nil {
			r.noteCommit(part, lsn)
			return nil
		}
		if hint, isNL := notLeader(err); isNL {
			if redirects >= r.cfg.MaxRedirects {
				return err
			}
			redirects++
			r.redirects.Add(1)
			if hint != "" && hint != r.Leader(part) {
				r.UpdateLeader(part, hint)
			} else {
				// No forwarding address (failover in progress): wait for
				// the supervisor to install the new leader.
				r.backoff(attempt)
			}
			attempt-- // a redirect is progress, not a failed attempt
			continue
		}
		if !r.retryable(err) {
			return err
		}
		r.backoff(attempt)
	}
	return err
}

func (r *Router) runWriteOnce(c *client.Client, iso engine.Isolation, fn func(*client.Txn) error) (uint64, error) {
	t, err := c.Begin(iso)
	if err != nil {
		return 0, err
	}
	defer func() { _ = t.Rollback() }()
	if err := fn(t); err != nil {
		return 0, err
	}
	if t.Done() {
		return 0, engine.ErrTxnDone
	}
	if err := t.Commit(); err != nil {
		return 0, err
	}
	return t.CommitLSN(), nil
}

// RunReadTxnPK routes a read-only transaction by primary key.
func (r *Router) RunReadTxnPK(pk int64, iso engine.Isolation, fn func(*client.Txn) error) error {
	return r.RunReadTxn(r.PartitionOf(pk), iso, fn)
}

// RunReadTxn runs fn as a read-only transaction against one of the
// partition's followers, bounded-staleness guarded: the BEGIN carries the
// partition's last observed commit LSN, and a follower that has not applied
// that far rejects it with STALE_READ. Followers are tried round-robin;
// when none qualifies (all stale, crashed, or there are none) the read
// falls back to the leader, which trivially satisfies the bound.
func (r *Router) RunReadTxn(part uint32, iso engine.Isolation, fn func(*client.Txn) error) error {
	if int(part) >= len(r.parts) {
		return fmt.Errorf("proxy: partition %d out of range (%d partitions)", part, len(r.parts))
	}
	var err error
	for attempt := 0; attempt < r.cfg.MaxRetries; attempt++ {
		err = r.readOnce(part, iso, fn)
		if err == nil || !r.retryable(err) {
			return err
		}
		r.backoff(attempt)
	}
	return err
}

func (r *Router) readOnce(part uint32, iso engine.Isolation, fn func(*client.Txn) error) error {
	minLSN := r.LastLSN(part)
	opts := client.BeginOpts{ReadOnly: true, MinLSN: minLSN}

	r.mu.Lock()
	followers := append([]string(nil), r.parts[part].Followers...)
	leader := r.parts[part].Leader
	r.mu.Unlock()

	var lastErr error
	if n := len(followers); n > 0 {
		start := int(r.rr[part].Add(1)) % n
		for i := 0; i < n; i++ {
			addr := followers[(start+i)%n]
			done, err := r.readOn(r.clientFor(addr), iso, opts, fn)
			if done {
				return err
			}
			lastErr = err
		}
	}
	// Leader fallback: its applied LSN is its durable frontier, which every
	// acknowledged commit precedes, so the bound always holds there.
	r.fallbacks.Add(1)
	done, err := r.readOn(r.clientFor(leader), iso, opts, fn)
	if done {
		return err
	}
	if err != nil {
		lastErr = err
	}
	return lastErr
}

// readOn attempts the read-only transaction on one node. done=false means
// "try the next candidate": the node is unreachable or too stale. Errors
// out of fn itself, or from commit, are final for this candidate pass.
func (r *Router) readOn(c *client.Client, iso engine.Isolation, opts client.BeginOpts, fn func(*client.Txn) error) (done bool, err error) {
	t, err := c.BeginWith(iso, opts)
	if err != nil {
		if staleRead(err) {
			return false, err
		}
		var we *wire.Error
		if errors.As(err, &we) {
			// A typed non-stale rejection (saturated after retries, bad
			// request) is a real answer, not a routing miss.
			return true, err
		}
		return false, err // transport-level: try the next node
	}
	defer func() { _ = t.Rollback() }()
	if err := fn(t); err != nil {
		return true, err
	}
	if t.Done() {
		return true, engine.ErrTxnDone
	}
	return true, t.Commit()
}
