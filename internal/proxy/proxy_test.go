package proxy

import (
	"sync"
	"testing"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
)

func newEngine(d engine.DialectKind) *engine.Engine {
	e := engine.New(engine.Config{Dialect: d, LockTimeout: 5 * time.Second})
	e.CreateTable(storage.NewSchema("items", storage.Column{Name: "qty", Type: storage.TInt}))
	return e
}

func TestCapabilityDetection(t *testing.T) {
	pg := New(newEngine(engine.Postgres), "boot-1", true)
	if !pg.Supports(CapUserLocks) {
		t.Fatal("postgres should support user locks natively")
	}
	my := New(newEngine(engine.MySQL), "boot-1", true)
	if my.Supports(CapUserLocks) {
		t.Fatal("mysql should not support user locks (Table 7a)")
	}
	for _, c := range []*Coordinator{pg, my} {
		if !c.Supports(CapRowLocks) || !c.Supports(CapSavepoints) {
			t.Fatal("row locks and savepoints should be universal")
		}
	}
}

// TestUserLockMutualExclusionBothDialects: the same proxy call provides
// exclusion on PostgreSQL (advisory locks) and MySQL (DB-table fallback).
func TestUserLockMutualExclusionBothDialects(t *testing.T) {
	for _, d := range []engine.DialectKind{engine.Postgres, engine.MySQL} {
		t.Run(d.String(), func(t *testing.T) {
			c := New(newEngine(d), "boot-1", true)
			var mu sync.Mutex
			in, max := 0, 0
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						err := c.WithUserLock(42, engine.IsolationDefault, func(*engine.Txn) error {
							mu.Lock()
							in++
							if in > max {
								max = in
							}
							mu.Unlock()
							mu.Lock()
							in--
							mu.Unlock()
							return nil
						})
						if err != nil {
							t.Errorf("WithUserLock: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if max > 1 {
				t.Fatalf("%d holders under user lock", max)
			}
		})
	}
}

func TestRowLockReturnsRow(t *testing.T) {
	e := newEngine(engine.Postgres)
	c := New(e, "b", true)
	var pk int64
	if err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		var err error
		pk, err = tx.Insert("items", map[string]storage.Value{"qty": int64(5)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		row, err := c.RowLock(tx, "items", pk)
		if err != nil {
			return err
		}
		if row.Get(e.Schema("items"), "qty") != int64(5) {
			t.Fatalf("row = %v", row)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		_, err := c.RowLock(tx, "items", 999)
		return err
	})
	if err == nil {
		t.Fatal("RowLock on missing row succeeded")
	}
}

func TestSavepointPassthrough(t *testing.T) {
	e := newEngine(engine.MySQL)
	c := New(e, "b", true)
	var pk int64
	if err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		var err error
		pk, err = tx.Insert("items", map[string]storage.Value{"qty": int64(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		if err := c.Savepoint(tx, "sp"); err != nil {
			return err
		}
		if _, err := tx.Update("items", storage.ByPK(pk), map[string]storage.Value{"qty": int64(99)}); err != nil {
			return err
		}
		return c.RollbackToSavepoint(tx, "sp")
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Run(engine.IsolationDefault, func(tx *engine.Txn) error {
		row, err := tx.SelectOne("items", storage.ByPK(pk))
		if err != nil {
			return err
		}
		if row.Get(e.Schema("items"), "qty") != int64(1) {
			t.Fatalf("qty = %v, want rolled-back 1", row.Get(e.Schema("items"), "qty"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineAccessor(t *testing.T) {
	e := newEngine(engine.Postgres)
	if New(e, "b", true).Engine() != e {
		t.Fatal("Engine() mismatch")
	}
}
