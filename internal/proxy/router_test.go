package proxy

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/server"
	"adhoctx/internal/storage"
	"adhoctx/internal/wire"
)

// TestPartitionMappingStable pins the static hash to the shared fixture
// (wire.PartitionFixture): these values are the routing contract between
// every node, router, and client, so a change to wire.PartitionOf is a
// protocol break, not a refactor. The router's own PartitionOf must agree
// with the same table its server-side gate is held to.
func TestPartitionMappingStable(t *testing.T) {
	for _, c := range wire.PartitionFixture() {
		if got := wire.PartitionOf(c.PK, c.Parts); got != c.Want {
			t.Errorf("PartitionOf(%d, %d) = %d, want %d", c.PK, c.Parts, got, c.Want)
		}
		if c.Parts == 0 {
			continue // Router always has >= 1 backend.
		}
		r := NewRouter(RouterConfig{Partitions: make([]PartitionNodes, c.Parts)})
		if got := r.PartitionOf(c.PK); got != c.Want {
			t.Errorf("Router.PartitionOf(%d) with %d partitions = %d, want %d", c.PK, c.Parts, got, c.Want)
		}
		r.Close()
	}
	// Determinism and range across a spread of keys and partition counts.
	for _, parts := range []uint32{2, 3, 4, 16} {
		seen := make(map[uint32]int)
		for pk := int64(0); pk < 4096; pk++ {
			p := wire.PartitionOf(pk, parts)
			if p >= parts {
				t.Fatalf("PartitionOf(%d, %d) = %d out of range", pk, parts, p)
			}
			if p != wire.PartitionOf(pk, parts) {
				t.Fatalf("PartitionOf(%d, %d) not deterministic", pk, parts)
			}
			seen[p]++
		}
		// The mix must actually spread keys: no partition may be starved
		// below half its fair share over 4096 sequential keys.
		fair := 4096 / int(parts)
		for p, n := range seen {
			if n < fair/2 {
				t.Errorf("parts=%d: partition %d got %d of 4096 keys (fair %d)", parts, p, n, fair)
			}
		}
	}
}

// routerNode is one serving node for router tests.
type routerNode struct {
	eng *engine.Engine
	srv *server.Server
}

func startNode(t *testing.T, cfg server.Config) *routerNode {
	t.Helper()
	eng := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: 2 * time.Second})
	eng.CreateTable(storage.NewSchema("accounts",
		storage.Column{Name: "bal", Type: storage.TInt},
	))
	srv := server.New(eng, nil, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return &routerNode{eng: eng, srv: srv}
}

func (n *routerNode) addr() string { return n.srv.Addr().String() }

// TestRouterWritesFollowLeaderHint: the router starts with a stale topology
// pointing at a follower; the follower's typed NOT_LEADER rejection carries
// the real leader's address and the router retries there transparently.
func TestRouterWritesFollowLeaderHint(t *testing.T) {
	leader := startNode(t, server.Config{})
	follower := startNode(t, server.Config{
		Writable:   func() bool { return false },
		LeaderHint: func() string { return "" }, // set below once leader is up
	})
	// Rebuild the follower with the hint now that the leader address exists.
	hinted := startNode(t, server.Config{
		Writable:   func() bool { return false },
		LeaderHint: func() string { return leader.addr() },
	})
	_ = follower

	r := NewRouter(RouterConfig{
		Partitions: []PartitionNodes{{Leader: hinted.addr()}}, // stale: points at a follower
	})
	defer r.Close()

	err := r.RunTxn(0, engine.IsolationDefault, func(txn *client.Txn) error {
		_, err := txn.Insert("accounts", map[string]storage.Value{"bal": int64(7)})
		return err
	})
	if err != nil {
		t.Fatalf("routed write: %v", err)
	}
	if r.Redirects() != 1 {
		t.Fatalf("redirects = %d, want 1", r.Redirects())
	}
	if got := r.Leader(0); got != leader.addr() {
		t.Fatalf("topology leader = %q, want %q", got, leader.addr())
	}
	// The write landed on the real leader, not the follower.
	rows := 0
	_ = leader.eng.Run(engine.IsolationDefault, func(txn *engine.Txn) error {
		rs, err := txn.Select("accounts", storage.All{})
		rows = len(rs)
		return err
	})
	if rows != 1 {
		t.Fatalf("leader has %d rows, want 1", rows)
	}
	if r.LastLSN(0) == 0 {
		t.Fatal("router did not record the commit LSN")
	}
}

// TestRouterRedirectLoopBounded: a "follower" hinting at itself must yield
// the typed error after MaxRedirects, not spin forever.
func TestRouterRedirectLoopBounded(t *testing.T) {
	var self string
	node := startNode(t, server.Config{
		Writable:   func() bool { return false },
		LeaderHint: func() string { return self },
	})
	self = node.addr()

	r := NewRouter(RouterConfig{
		Partitions:   []PartitionNodes{{Leader: node.addr()}},
		MaxRedirects: 3,
		BackoffBase:  time.Microsecond,
	})
	defer r.Close()

	err := r.RunTxn(0, engine.IsolationDefault, func(txn *client.Txn) error {
		_, err := txn.Insert("accounts", map[string]storage.Value{"bal": int64(1)})
		return err
	})
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeNotLeader {
		t.Fatalf("err = %v, want CodeNotLeader after bounded redirects", err)
	}
	if r.Redirects() != 3 {
		t.Fatalf("redirects = %d, want 3", r.Redirects())
	}
}

// TestRouterBoundedStaleness is the table-driven staleness matrix: a
// follower whose applied LSN trails the router's floor is rejected typed
// and the read falls back (next follower, then leader); one that has caught
// up serves the read.
func TestRouterBoundedStaleness(t *testing.T) {
	cases := []struct {
		name          string
		followerLSN   uint64 // applied LSN the follower reports
		floor         uint64 // router's last-seen commit LSN
		wantFallbacks int64  // leader fallbacks taken
	}{
		{name: "follower current", followerLSN: 10, floor: 10, wantFallbacks: 0},
		{name: "follower ahead", followerLSN: 12, floor: 10, wantFallbacks: 0},
		{name: "follower stale", followerLSN: 9, floor: 10, wantFallbacks: 1},
		{name: "no floor yet", followerLSN: 0, floor: 0, wantFallbacks: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			leader := startNode(t, server.Config{})
			lsn := tc.followerLSN
			follower := startNode(t, server.Config{
				Writable:   func() bool { return false },
				AppliedLSN: func() uint64 { return lsn },
			})

			r := NewRouter(RouterConfig{
				Partitions: []PartitionNodes{{
					Leader:    leader.addr(),
					Followers: []string{follower.addr()},
				}},
			})
			defer r.Close()
			r.lastLSN[0].Store(tc.floor)

			// Seed one row on the leader so the read sees data there too.
			if err := leader.eng.Run(engine.IsolationDefault, func(txn *engine.Txn) error {
				_, err := txn.Insert("accounts", map[string]storage.Value{"bal": int64(5)})
				return err
			}); err != nil {
				t.Fatal(err)
			}

			err := r.RunReadTxn(0, engine.IsolationDefault, func(txn *client.Txn) error {
				_, err := txn.Select("accounts", storage.All{}, wire.LockNone)
				return err
			})
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if got := r.LeaderReadFallbacks(); got != tc.wantFallbacks {
				t.Fatalf("leader fallbacks = %d, want %d", got, tc.wantFallbacks)
			}
		})
	}
}

// TestRouterReadOnlySessionRejectsWrites: a write smuggled into RunReadTxn
// bounces with NOT_LEADER from the follower's read-only session.
func TestRouterReadOnlySessionRejectsWrites(t *testing.T) {
	leader := startNode(t, server.Config{})
	follower := startNode(t, server.Config{
		Writable:   func() bool { return false },
		AppliedLSN: func() uint64 { return 0 },
		LeaderHint: func() string { return leader.addr() },
	})
	r := NewRouter(RouterConfig{
		Partitions: []PartitionNodes{{Leader: leader.addr(), Followers: []string{follower.addr()}}},
	})
	defer r.Close()

	err := r.RunReadTxn(0, engine.IsolationDefault, func(txn *client.Txn) error {
		_, err := txn.Insert("accounts", map[string]storage.Value{"bal": int64(1)})
		return err
	})
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeNotLeader {
		t.Fatalf("err = %v, want CodeNotLeader", err)
	}
}

// TestRouterWrongPartitionSurfaced: a node that owns a different partition
// rejects typed, and the router surfaces it rather than blind-retrying —
// topology disagreement is a bug, not a transient.
func TestRouterWrongPartitionSurfaced(t *testing.T) {
	const parts = 4
	// A node claiming to own partition 0 of 4.
	node := startNode(t, server.Config{PartitionIndex: 0, PartitionCount: parts})

	// Find a pk that does NOT hash to partition 0.
	pk := int64(1)
	for wire.PartitionOf(pk, parts) == 0 {
		pk++
	}
	r := NewRouter(RouterConfig{
		Partitions: []PartitionNodes{
			{Leader: node.addr()}, {Leader: node.addr()},
			{Leader: node.addr()}, {Leader: node.addr()},
		},
	})
	defer r.Close()

	err := r.RunTxnPK(pk, engine.IsolationDefault, func(txn *client.Txn) error {
		_, err := txn.Insert("accounts", map[string]storage.Value{
			storage.PKColumn: pk, "bal": int64(1),
		})
		return err
	})
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeWrongPartition {
		t.Fatalf("err = %v, want CodeWrongPartition", err)
	}

	// The same write routed at the right partition's node succeeds.
	owned := startNode(t, server.Config{PartitionIndex: wire.PartitionOf(pk, parts), PartitionCount: parts})
	r.UpdateLeader(wire.PartitionOf(pk, parts), owned.addr())
	if err := r.RunTxnPK(pk, engine.IsolationDefault, func(txn *client.Txn) error {
		_, err := txn.Insert("accounts", map[string]storage.Value{
			storage.PKColumn: pk, "bal": int64(1),
		})
		return err
	}); err != nil {
		t.Fatalf("correctly-routed write: %v", err)
	}
}

// TestRouterReadYourWrites: end-to-end LSN plumbing — a commit through the
// router raises the floor, and a follower stuck behind it cannot serve the
// subsequent read (leader fallback returns the fresh row).
func TestRouterReadYourWrites(t *testing.T) {
	leader := startNode(t, server.Config{})
	follower := startNode(t, server.Config{
		Writable:   func() bool { return false },
		AppliedLSN: func() uint64 { return 0 }, // never catches up
	})
	r := NewRouter(RouterConfig{
		Partitions: []PartitionNodes{{Leader: leader.addr(), Followers: []string{follower.addr()}}},
	})
	defer r.Close()

	var pk int64
	if err := r.RunTxn(0, engine.IsolationDefault, func(txn *client.Txn) error {
		var err error
		pk, err = txn.Insert("accounts", map[string]storage.Value{"bal": int64(31)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if r.LastLSN(0) == 0 {
		t.Fatal("commit LSN not recorded")
	}

	got := 0
	if err := r.RunReadTxn(0, engine.IsolationDefault, func(txn *client.Txn) error {
		rows, err := txn.Select("accounts", storage.ByPK(pk), wire.LockNone)
		if err != nil {
			return err
		}
		got = len(rows.Rows)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("read-your-writes returned %d rows, want 1", got)
	}
	if r.LeaderReadFallbacks() == 0 {
		t.Fatal("read should have fallen back past the stale follower")
	}
}

// TestRouterPartitionOutOfRange: misuse gets a plain error.
func TestRouterPartitionOutOfRange(t *testing.T) {
	r := NewRouter(RouterConfig{Partitions: []PartitionNodes{{Leader: "127.0.0.1:1"}}})
	defer r.Close()
	if err := r.RunTxn(9, engine.IsolationDefault, nil); err == nil {
		t.Fatal("want error for out-of-range partition")
	}
	if err := r.RunReadTxn(9, engine.IsolationDefault, nil); err == nil {
		t.Fatal("want error for out-of-range partition")
	}
}

// TestRouterFollowerRoundRobin: reads spread across followers.
func TestRouterFollowerRoundRobin(t *testing.T) {
	leader := startNode(t, server.Config{})
	mkFollower := func() *routerNode {
		return startNode(t, server.Config{
			Writable:   func() bool { return false },
			AppliedLSN: func() uint64 { return 1 << 40 },
		})
	}
	f1, f2 := mkFollower(), mkFollower()
	r := NewRouter(RouterConfig{
		Partitions: []PartitionNodes{{Leader: leader.addr(), Followers: []string{f1.addr(), f2.addr()}}},
	})
	defer r.Close()

	for i := 0; i < 6; i++ {
		if err := r.RunReadTxn(0, engine.IsolationDefault, func(txn *client.Txn) error {
			_, err := txn.Select("accounts", storage.All{}, wire.LockNone)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if r.LeaderReadFallbacks() != 0 {
		t.Fatalf("fallbacks = %d, want 0 with healthy followers", r.LeaderReadFallbacks())
	}
}

func ExampleRouter_PartitionOf() {
	r := NewRouter(RouterConfig{Partitions: make([]PartitionNodes, 4)})
	defer r.Close()
	p := r.PartitionOf(1)
	fmt.Println(p == wire.PartitionOf(1, 4))
	// Output: true
}
