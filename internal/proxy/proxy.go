// Package proxy implements the application-level proxy module the paper's
// discussion proposes (§6): one coordination-hint interface over whatever
// database is in use, with capability detection per dialect and graceful
// fallbacks — "the module should provide a database table–based lock
// implementation as the fallback of explicit user locks".
package proxy

import (
	"fmt"
	"strconv"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
)

// Capability names a coordination hint from Table 7a.
type Capability string

// Capabilities the proxy understands.
const (
	CapUserLocks    Capability = "explicit user locks"
	CapRowLocks     Capability = "explicit row locks"
	CapSavepoints   Capability = "savepoints"
	CapPerOpIsoRead Capability = "per-op isolation"
)

// Coordinator is the proxy module: construct once per engine at boot.
type Coordinator struct {
	eng      *engine.Engine
	caps     map[Capability]bool
	fallback *locks.DBLocker
}

// New builds a coordinator over eng, detecting the dialect's capabilities
// (Table 7a: PostgreSQL exposes explicit user locks; MySQL does not) and
// provisioning the DB-table fallback when needed. setupFallbackTable
// controls whether the fallback lock table is created (pass false if
// locks.SetupDBLockTable already ran).
func New(eng *engine.Engine, bootID string, setupFallbackTable bool) *Coordinator {
	c := &Coordinator{
		eng: eng,
		caps: map[Capability]bool{
			CapRowLocks:     true, // SELECT FOR UPDATE everywhere
			CapSavepoints:   true, // both dialects
			CapUserLocks:    eng.Config().Dialect == engine.Postgres,
			CapPerOpIsoRead: eng.Config().Dialect == engine.MySQL, // InnoDB per-statement locking hints
		},
	}
	if !c.caps[CapUserLocks] {
		if setupFallbackTable {
			locks.SetupDBLockTable(eng)
		}
		c.fallback = &locks.DBLocker{Eng: eng, BootID: bootID, Owner: "proxy"}
	}
	return c
}

// Supports reports whether the underlying database offers the hint natively
// (false means the proxy emulates it).
func (c *Coordinator) Supports(cap Capability) bool { return c.caps[cap] }

// UserLock acquires user lock key for the duration of txn. On databases with
// native user locks (PostgreSQL advisory locks) it is transaction-scoped and
// the returned release is a no-op; otherwise the DB-table fallback is used
// and the release must be called (WithUserLock does this for you).
func (c *Coordinator) UserLock(txn *engine.Txn, key int64) (core.Release, error) {
	if c.caps[CapUserLocks] {
		if err := txn.AdvisoryLock(key); err != nil {
			return nil, err
		}
		return func() error { return nil }, nil // released at txn end
	}
	return c.fallback.Acquire(strconv.FormatInt(key, 10))
}

// WithUserLock runs body under user lock key inside a fresh transaction,
// handling the release discipline of both implementations.
func (c *Coordinator) WithUserLock(key int64, iso engine.Isolation, body func(*engine.Txn) error) error {
	return c.eng.Run(iso, func(t *engine.Txn) error {
		rel, err := c.UserLock(t, key)
		if err != nil {
			return err
		}
		bodyErr := body(t)
		relErr := rel()
		if bodyErr != nil {
			return bodyErr
		}
		return relErr
	})
}

// RowLock explicitly locks one row (SELECT ... FOR UPDATE) in txn and
// returns the current row image.
func (c *Coordinator) RowLock(txn *engine.Txn, table string, pk int64) (storage.Row, error) {
	row, err := txn.SelectOne(table, storage.ByPK(pk), engine.ForUpdate)
	if err != nil {
		return nil, err
	}
	if row == nil {
		return nil, fmt.Errorf("proxy: %s id=%d does not exist", table, pk)
	}
	return row, nil
}

// Savepoint sets a savepoint; RollbackToSavepoint partially rolls back.
// Thin passthroughs so applications depend only on the proxy interface.
func (c *Coordinator) Savepoint(txn *engine.Txn, name string) error { return txn.Savepoint(name) }

// RollbackToSavepoint rolls txn back to the named savepoint.
func (c *Coordinator) RollbackToSavepoint(txn *engine.Txn, name string) error {
	return txn.RollbackTo(name)
}

// Engine returns the wrapped engine.
func (c *Coordinator) Engine() *engine.Engine { return c.eng }
