//go:build race

package sched

// raceEnabled reports whether the race detector instruments this build;
// timing budgets are meaningless with instrumented atomics.
const raceEnabled = true
