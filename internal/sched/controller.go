package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrTaskLeaked marks a task whose goroutine was still blocked when the
// post-run drain timed out (a real deadlock outside the controller's view).
var ErrTaskLeaked = errors.New("sched: task did not finish during drain")

// taskState is the scheduler-visible lifecycle of one registered goroutine.
type taskState int

const (
	tsNew      taskState = iota // goroutine spawned, not yet parked
	tsReady                     // parked at a Point; schedulable
	tsBlocked                   // parked in Wait; schedulable iff pred() holds
	tsChoosing                  // parked at a Choose; schedulable, then picks a branch
	tsRunning                   // the one task currently executing
	tsDone                      // fn returned (or panicked)
)

// task is one registered goroutine under the controller.
type task struct {
	id   int
	name string
	fn   func() error
	c    *Controller

	// resume carries the controller's "go" signal; buffered so the
	// controller never blocks handing it over.
	resume chan struct{}

	mu      sync.Mutex
	state   taskState
	label   string      // pending transition label while parked
	pred    func() bool // readiness poll while tsBlocked
	n       int         // branch arity while tsChoosing
	branch  int         // branch value, set by the controller before resume
	waitOK  bool        // Wait outcome, set by the controller before resume
	granted bool        // a Wait predicate latched true (signal consumed)
	err     error       // fn result, valid once tsDone
}

func (t *task) getState() taskState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// park publishes the task's pending transition and blocks until the
// controller schedules it.
func (t *task) park(st taskState, label string, pred func() bool, n int) {
	t.mu.Lock()
	t.state = st
	t.label = label
	t.pred = pred
	t.n = n
	t.mu.Unlock()
	t.c.yield <- t
	<-t.resume
}

// main is the task goroutine body: register, park at the start line, run fn
// (converting panics — crash points included — into errors), report done.
func (t *task) main() {
	t.c.bind(gid(), t)
	t.park(tsReady, "task/start", nil, 0)
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.err = &PanicError{Value: r}
			}
		}()
		t.err = t.fn()
	}()
	t.c.unbind(gid())
	t.mu.Lock()
	t.state = tsDone
	t.mu.Unlock()
	t.c.yield <- t
}

// PanicError wraps a panic recovered from a task body, so crash-point
// panics (*sim.CrashError) and genuine bugs both surface as task errors the
// litmus check can inspect. Unwrap exposes panic values that are errors.
type PanicError struct{ Value any }

func (p *PanicError) Error() string { return fmt.Sprintf("task panic: %v", p.Value) }

func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Step is one scheduling step of a run's trace.
type Step struct {
	Task    string // task name
	Label   string // transition label the task was parked at
	Branch  bool   // true for a Choose branch decision
	Val     int    // task id, or branch value for branch steps
	Decided bool   // true when a Strategy pick was recorded for this step
	Note    string // Annotate notes stamped while this step executed
}

func (s Step) String() string {
	kind := ""
	if s.Branch {
		kind = fmt.Sprintf(" := %d", s.Val)
	}
	note := ""
	if s.Note != "" {
		note = "  [" + s.Note + "]"
	}
	return fmt.Sprintf("%-10s %s%s%s", s.Task, s.Label, kind, note)
}

// Result is the outcome of one controlled run.
type Result struct {
	Picks []uint64 // recorded strategy decisions (task ids / branch values)
	Steps []Step   // full trace, including auto-advanced singleton steps
	Bound int      // preemption bound in force (for schedule-ID encoding)

	Errs map[string]error // task name -> error (nil entries for clean tasks)

	Stuck     bool // no runnable task before all tasks finished (deadlock)
	Truncated bool // step limit hit; terminal state is mid-flight
	Drained   bool // all tasks finished during post-run free drain
}

// Preemptions counts scheduler-forced task switches in the trace — the
// minimizer's primary score.
func (r *Result) Preemptions() int {
	n := 0
	last := ""
	for _, s := range r.Steps {
		if s.Branch {
			continue
		}
		if last != "" && s.Task != last {
			n++
		}
		last = s.Task
	}
	return n
}

// Config parameterizes a Controller.
type Config struct {
	Strategy Strategy
	// StepLimit bounds decisions per run; exceeding it truncates the run
	// (the terminal state is not checked). Default 10000.
	StepLimit int
	// PreemptionBound caps scheduler-forced task switches per run
	// (CHESS-style): once spent, the running task keeps running while it
	// stays enabled. Negative means unbounded. The known §4 bugs need at
	// most two preemptions.
	PreemptionBound int
	// DrainTimeout bounds the post-run free drain of leftover goroutines
	// after a stuck or truncated run. Default 5s.
	DrainTimeout time.Duration
	// StuckGrace is how long an empty runnable set is re-polled before the
	// run is declared stuck. Wait predicates normally flip only when a task
	// acts, but a program may spawn uncontrolled helper goroutines whose
	// effects arrive on real time. Default 50ms; only ever paid on runs
	// that end stuck or race such a helper.
	StuckGrace time.Duration
}

// Controller serializes a set of tasks: exactly one runs between scheduling
// decisions, and a Strategy picks which. Create one per run; it is not
// reusable. Only one controller may be installed process-wide at a time
// (the seam is a process global), so explorations are sequential.
type Controller struct {
	cfg   Config
	tasks []*task
	yield chan *task

	gmu   sync.Mutex
	byGid map[uint64]*task

	last    *task // task chosen by the previous decision
	preempt int   // preemptions spent

	picks []uint64
	steps []Step

	stuck     bool
	truncated bool
}

// NewController creates a controller. Register tasks with Go, then call Run
// exactly once.
func NewController(cfg Config) *Controller {
	if cfg.StepLimit <= 0 {
		cfg.StepLimit = 10000
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.StuckGrace <= 0 {
		cfg.StuckGrace = 50 * time.Millisecond
	}
	return &Controller{
		cfg:   cfg,
		yield: make(chan *task, 256),
		byGid: make(map[uint64]*task),
	}
}

// Go registers a task. Must be called before Run.
func (c *Controller) Go(name string, fn func() error) {
	c.tasks = append(c.tasks, &task{
		id:     len(c.tasks),
		name:   name,
		fn:     fn,
		c:      c,
		resume: make(chan struct{}, 1),
	})
}

func (c *Controller) bind(g uint64, t *task) {
	c.gmu.Lock()
	c.byGid[g] = t
	c.gmu.Unlock()
}

func (c *Controller) unbind(g uint64) {
	c.gmu.Lock()
	delete(c.byGid, g)
	c.gmu.Unlock()
}

func (c *Controller) taskFor(g uint64) *task {
	c.gmu.Lock()
	t := c.byGid[g]
	c.gmu.Unlock()
	return t
}

// point parks the calling task at a scheduling point. Unregistered
// goroutines (helpers the program spawns outside the controller, test
// plumbing) pass through untouched.
func (c *Controller) point(label string) {
	t := c.taskFor(gid())
	if t == nil {
		return
	}
	t.park(tsReady, label, nil, 0)
}

// wait parks the calling task as blocked-on-pred; see Wait.
func (c *Controller) wait(label string, ready func() bool) bool {
	t := c.taskFor(gid())
	if t == nil {
		return false
	}
	t.park(tsBlocked, label, ready, 0)
	t.mu.Lock()
	ok := t.waitOK
	t.pred = nil
	t.granted = false
	t.mu.Unlock()
	return ok
}

// annotate stamps a note onto the trace step currently executing. Only the
// single running task reaches here, and the scheduler goroutine is parked in
// await() until that task yields again, so the append is ordered with every
// steps access through the yield/resume channels.
func (c *Controller) annotate(note string) {
	if c.taskFor(gid()) == nil {
		return
	}
	if n := len(c.steps); n > 0 {
		s := &c.steps[n-1]
		if s.Note == "" {
			s.Note = note
		} else {
			s.Note += " " + note
		}
	}
}

// choose parks the calling task at a branch decision; see Choose.
func (c *Controller) choose(label string, n int) int {
	t := c.taskFor(gid())
	if t == nil {
		return 0
	}
	t.park(tsChoosing, label, nil, n)
	t.mu.Lock()
	b := t.branch
	t.mu.Unlock()
	return b
}

// Run installs the controller, schedules the registered tasks to
// completion (or stuck state / step limit), uninstalls it, and returns the
// run's result. The scheduler loop executes on the caller's goroutine.
func (c *Controller) Run() *Result {
	if !active.CompareAndSwap(nil, c) {
		panic("sched: a controller is already installed; explorations are sequential")
	}
	for _, t := range c.tasks {
		go t.main()
	}
	c.await()

	for {
		if c.allDone() {
			break
		}
		enabled := c.runnable()
		if len(enabled) == 0 {
			enabled = c.repollRunnable()
		}
		if len(enabled) == 0 {
			c.stuck = true
			break
		}
		if len(c.steps) >= c.cfg.StepLimit {
			c.truncated = true
			break
		}
		c.scheduleOne(enabled)
		c.await()
	}

	active.Store(nil)
	res := &Result{
		Picks:     c.picks,
		Steps:     c.steps,
		Bound:     c.cfg.PreemptionBound,
		Errs:      make(map[string]error, len(c.tasks)),
		Stuck:     c.stuck,
		Truncated: c.truncated,
	}
	res.Drained = c.drain()
	for _, t := range c.tasks {
		t.mu.Lock()
		if t.state == tsDone {
			res.Errs[t.name] = t.err
		} else {
			// The goroutine is still live (real deadlock under drain);
			// reading t.err would race with its eventual write.
			res.Errs[t.name] = ErrTaskLeaked
		}
		t.mu.Unlock()
	}
	return res
}

// scheduleOne makes one scheduling decision (plus a branch decision when the
// chosen task is at a Choose) and resumes the chosen task.
func (c *Controller) scheduleOne(enabled []*task) {
	lastEnabled := false
	for _, t := range enabled {
		if t == c.last {
			lastEnabled = true
		}
	}

	opts := enabled
	if c.cfg.PreemptionBound >= 0 && lastEnabled && c.preempt >= c.cfg.PreemptionBound {
		opts = []*task{c.last}
	}

	var chosen *task
	decided := false
	if len(opts) == 1 {
		// No real choice: auto-advance without consulting the strategy or
		// recording a pick, keeping schedule IDs and DFS depth proportional
		// to genuine decisions.
		chosen = opts[0]
	} else {
		d := Decision{Options: make([]Option, len(opts))}
		for i, t := range opts {
			t.mu.Lock()
			d.Options[i] = Option{Task: t.id, Name: t.name, Label: t.label}
			t.mu.Unlock()
		}
		pick := c.cfg.Strategy.Pick(d)
		if pick < 0 || pick >= len(opts) {
			pick = 0
		}
		chosen = opts[pick]
		c.picks = append(c.picks, uint64(chosen.id))
		decided = true
	}
	if c.last != nil && chosen != c.last && lastEnabled {
		c.preempt++
	}
	c.last = chosen

	chosen.mu.Lock()
	label := chosen.label
	st := chosen.state
	n := chosen.n
	chosen.mu.Unlock()
	c.steps = append(c.steps, Step{Task: chosen.name, Label: label, Val: chosen.id, Decided: decided})

	branch := 0
	if st == tsChoosing && n > 1 {
		bd := Decision{Branch: true, Options: make([]Option, n)}
		for i := 0; i < n; i++ {
			bd.Options[i] = Option{Task: i, Name: chosen.name, Label: label}
		}
		branch = c.cfg.Strategy.Pick(bd)
		if branch < 0 || branch >= n {
			branch = 0
		}
		c.picks = append(c.picks, uint64(branch))
		c.steps = append(c.steps, Step{Task: chosen.name, Label: label, Branch: true, Val: branch, Decided: true})
	}

	c.resumeTask(chosen, branch, true)
}

func (c *Controller) resumeTask(t *task, branch int, waitOK bool) {
	t.mu.Lock()
	t.state = tsRunning
	t.branch = branch
	t.waitOK = waitOK
	t.mu.Unlock()
	t.resume <- struct{}{}
}

// await blocks until no task is running or still starting up, consuming
// park notifications. Stale notifications only cause a re-check.
func (c *Controller) await() {
	for c.anyRunning() {
		<-c.yield
	}
}

func (c *Controller) anyRunning() bool {
	for _, t := range c.tasks {
		switch t.getState() {
		case tsRunning, tsNew:
			return true
		}
	}
	return false
}

func (c *Controller) allDone() bool {
	for _, t := range c.tasks {
		if t.getState() != tsDone {
			return false
		}
	}
	return true
}

// runnable returns the schedulable tasks in task-id order (deterministic):
// parked at a Point or Choose, or blocked with a true readiness poll. A true
// poll is latched immediately — the predicate may have consumed its signal
// (a lock grant pulled off a channel), so it must not be polled again and
// the task's Wait must return true even if the task is only scheduled
// later, or is released by the drain.
func (c *Controller) runnable() []*task {
	var out []*task
	for _, t := range c.tasks {
		t.mu.Lock()
		st, pred := t.state, t.pred
		t.mu.Unlock()
		switch st {
		case tsReady, tsChoosing:
			out = append(out, t)
		case tsBlocked:
			if pred != nil && pred() {
				t.mu.Lock()
				t.state = tsReady
				t.pred = nil
				t.granted = true
				t.mu.Unlock()
				out = append(out, t)
			}
		}
	}
	return out
}

// repollRunnable keeps re-evaluating Wait predicates for StuckGrace before
// the run is declared stuck, giving uncontrolled helper goroutines time to
// land their effects.
func (c *Controller) repollRunnable() []*task {
	deadline := time.Now().Add(c.cfg.StuckGrace)
	for time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
		if enabled := c.runnable(); len(enabled) > 0 {
			return enabled
		}
	}
	return nil
}

// drain lets leftover tasks run free after the controlled phase: the seam is
// already uninstalled, so resumed tasks pass through Points, Waits fall back
// to their real blocking paths (waitOK=false), and Chooses take branch 0.
// After a normal run every task is already done and this is a no-op; after a
// stuck or truncated run it bounds cleanup. Returns whether all tasks
// finished; a task deadlocked for real (e.g. an ad hoc ABBA on semaphore
// locks with no timeout) leaks its goroutine after DrainTimeout.
func (c *Controller) drain() bool {
	deadline := time.Now().Add(c.cfg.DrainTimeout)
	for {
		if c.allDone() {
			return true
		}
		for _, t := range c.tasks {
			t.mu.Lock()
			parked := t.state == tsReady || t.state == tsBlocked || t.state == tsChoosing
			if parked {
				t.state = tsRunning
				t.branch = 0
				// A latched Wait already consumed its signal; releasing it
				// with false would strand the caller on its real blocking
				// path waiting for a signal that is gone.
				t.waitOK = t.granted
				t.pred = nil
			}
			t.mu.Unlock()
			if parked {
				select {
				case t.resume <- struct{}{}:
				default:
				}
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-c.yield:
		case <-time.After(time.Millisecond):
		}
	}
}
