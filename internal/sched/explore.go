package sched

import (
	"fmt"
	"strings"
)

// Thread is one concurrent actor of a litmus program.
type Thread struct {
	Name string
	Run  func() error
}

// Instance is one freshly-built world of a program: threads over private
// state, plus a terminal-state check. Check sees the run's task errors and
// flags and returns nil when the terminal state is acceptable; the explorer
// treats a non-nil return as a violation. Check is not called for stuck or
// truncated runs (their state is mid-flight); stuck runs are violations
// outright.
type Instance struct {
	Threads []Thread
	Check   func(r *Result) error
	Cleanup func()
}

// Program builds fresh instances; Make runs before the controller is
// installed, so world setup (schema creation, seed rows) is uninstrumented.
type Program struct {
	Name string
	Doc  string
	Make func() (*Instance, error)
}

// Explorer runs a Program's schedules under a strategy and checks every
// terminal state.
type Explorer struct {
	Prog Program

	// StepLimit per run; default 4000.
	StepLimit int
	// PreemptionBound per run; 0 means the default of 2, negative means
	// unbounded. The paper's §4 bug classes all fire within two preemptions.
	PreemptionBound int
	// MaxSchedules caps a DFS exploration; default 100000.
	MaxSchedules int
	// NoSleep disables sleep-set pruning (for pruning-soundness tests).
	NoSleep bool

	// PCTDepth / PCTLen parameterize PCT runs (defaults 3 / 128).
	PCTDepth int
	PCTLen   int

	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// Report summarizes one exploration.
type Report struct {
	Program   string
	Strategy  string
	Schedules int // runs executed (pruned drains excluded)
	Pruned    int // runs abandoned at an all-slept frontier
	Truncated int // runs that hit the step limit
	Bound     int
	// Complete means bounded-exhaustive DFS exhausted the space within
	// MaxSchedules with no truncations (still modulo the preemption bound).
	Complete  bool
	Violation *Violation
	// Diverged is set by Replay when the recorded schedule no longer
	// matches the program.
	Diverged bool
	// Seed is the failing PCT seed, when Strategy is "pct".
	Seed int64
}

// Violation is one failing terminal state with its replay handles.
type Violation struct {
	Err        error
	ScheduleID string
	Steps      []Step
	// MinScheduleID / MinSteps are the delta-minimized equivalent: the
	// explorer greedily removes task switches and trailing decisions while
	// the failure persists.
	MinScheduleID string
	MinSteps      []Step
	MinErr        error
}

// Format renders a violation for humans: error, IDs, minimized trace.
func (v *Violation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violation: %v\n", v.Err)
	fmt.Fprintf(&b, "schedule id: %s\n", v.ScheduleID)
	steps, id, err := v.Steps, v.ScheduleID, v.Err
	if v.MinScheduleID != "" {
		fmt.Fprintf(&b, "minimized id: %s\n", v.MinScheduleID)
		steps, id, err = v.MinSteps, v.MinScheduleID, v.MinErr
	}
	_ = id
	fmt.Fprintf(&b, "trace (%d steps, %v):\n", len(steps), err)
	for i, s := range steps {
		marker := "  "
		if i > 0 && !s.Branch && s.Task != steps[i-1].Task {
			marker = "* " // task switch
		}
		fmt.Fprintf(&b, "  %s%3d %s\n", marker, i, s)
	}
	return b.String()
}

func (ex *Explorer) stepLimit() int {
	if ex.StepLimit > 0 {
		return ex.StepLimit
	}
	return 4000
}

func (ex *Explorer) bound() int {
	if ex.PreemptionBound == 0 {
		return 2
	}
	if ex.PreemptionBound < 0 {
		return -1
	}
	return ex.PreemptionBound
}

func (ex *Explorer) maxSchedules() int {
	if ex.MaxSchedules > 0 {
		return ex.MaxSchedules
	}
	return 100000
}

func (ex *Explorer) logf(format string, args ...any) {
	if ex.Log != nil {
		ex.Log(format, args...)
	}
}

// runOnce builds a fresh instance and executes one controlled run under the
// strategy. Returns the run result and the violation error (nil when the
// terminal state passed).
func (ex *Explorer) runOnce(s Strategy, bound int) (*Result, error, error) {
	inst, err := ex.Prog.Make()
	if err != nil {
		return nil, nil, fmt.Errorf("sched: make %s: %w", ex.Prog.Name, err)
	}
	if inst.Cleanup != nil {
		defer inst.Cleanup()
	}
	c := NewController(Config{
		Strategy:        s,
		StepLimit:       ex.stepLimit(),
		PreemptionBound: bound,
	})
	for _, th := range inst.Threads {
		c.Go(th.Name, th.Run)
	}
	s.Begin()
	res := c.Run()
	switch {
	case res.Stuck:
		return res, fmt.Errorf("stuck: no runnable task with %s", pendingSummary(res)), nil
	case res.Truncated:
		return res, nil, nil
	}
	if inst.Check != nil {
		return res, inst.Check(res), nil
	}
	return res, nil, nil
}

func pendingSummary(res *Result) string {
	if len(res.Steps) == 0 {
		return "no steps taken"
	}
	return fmt.Sprintf("%d steps taken, last: %s", len(res.Steps), res.Steps[len(res.Steps)-1])
}

// ExploreDFS enumerates schedules bounded-exhaustively and returns on the
// first violation or on exhaustion.
func (ex *Explorer) ExploreDFS() (*Report, error) {
	d := &DFS{NoSleep: ex.NoSleep}
	rep := &Report{Program: ex.Prog.Name, Strategy: "dfs", Bound: ex.bound()}
	for {
		res, verr, err := ex.runOnce(d, rep.Bound)
		if err != nil {
			return nil, err
		}
		if d.Pruned() {
			rep.Pruned++
		} else {
			rep.Schedules++
			if res.Truncated {
				rep.Truncated++
			}
			if verr != nil {
				rep.Violation = ex.buildViolation(res, verr, rep.Bound)
				return rep, nil
			}
		}
		if rep.Schedules%1000 == 0 && rep.Schedules > 0 {
			ex.logf("%s: dfs %d schedules...", ex.Prog.Name, rep.Schedules)
		}
		if rep.Schedules+rep.Pruned >= ex.maxSchedules() {
			return rep, nil
		}
		if !d.Advance() {
			rep.Complete = rep.Truncated == 0
			return rep, nil
		}
	}
}

// ExplorePCT samples `seeds` schedules with PCT priorities seeded
// baseSeed, baseSeed+1, ... and returns on the first violation.
func (ex *Explorer) ExplorePCT(baseSeed int64, seeds int) (*Report, error) {
	rep := &Report{Program: ex.Prog.Name, Strategy: "pct", Bound: ex.bound()}
	for i := 0; i < seeds; i++ {
		p := NewPCT(baseSeed+int64(i), ex.PCTDepth, ex.PCTLen)
		res, verr, err := ex.runOnce(p, rep.Bound)
		if err != nil {
			return nil, err
		}
		rep.Schedules++
		if res.Truncated {
			rep.Truncated++
		}
		if verr != nil {
			rep.Seed = baseSeed + int64(i)
			rep.Violation = ex.buildViolation(res, verr, rep.Bound)
			return rep, nil
		}
	}
	return rep, nil
}

// ReplayID re-executes a recorded schedule. The preemption bound travels
// inside the ID so the decision structure matches the recording run.
func (ex *Explorer) ReplayID(id string) (*Report, error) {
	bound, picks, err := DecodeSchedule(id)
	if err != nil {
		return nil, err
	}
	r := &Replay{Vals: picks}
	res, verr, err := ex.runOnce(r, bound)
	if err != nil {
		return nil, err
	}
	rep := &Report{Program: ex.Prog.Name, Strategy: "replay", Bound: bound, Schedules: 1, Diverged: r.Diverged}
	if res.Truncated {
		rep.Truncated = 1
	}
	if verr != nil {
		// Replay reports the violation as-is without re-minimizing.
		rep.Violation = &Violation{
			Err:        verr,
			ScheduleID: EncodeSchedule(bound, res.Picks),
			Steps:      res.Steps,
		}
	}
	return rep, nil
}

// buildViolation packages a failing run and greedily minimizes its schedule.
func (ex *Explorer) buildViolation(res *Result, verr error, bound int) *Violation {
	v := &Violation{
		Err:        verr,
		ScheduleID: EncodeSchedule(bound, res.Picks),
		Steps:      res.Steps,
	}
	minPicks, minSteps, minErr := ex.minimize(res, verr, bound)
	if minPicks != nil {
		v.MinScheduleID = EncodeSchedule(bound, minPicks)
		v.MinSteps = minSteps
		v.MinErr = minErr
	}
	return v
}

// minimizeBudget caps replay runs spent shrinking one violation.
const minimizeBudget = 80

// minimize greedily simplifies a failing schedule: drop trailing decisions
// (the suffix falls back to default picks), then rewrite decided task picks
// to extend the previously-running task, removing preemptions. A candidate
// is kept when it still fails and scores lower (switches, then length).
// Each accepted candidate's canonical picks come from its own run, so the
// result always replays exactly.
func (ex *Explorer) minimize(res *Result, verr error, bound int) ([]uint64, []Step, error) {
	best := res
	bestErr := verr
	budget := minimizeBudget

	try := func(cand []uint64) bool {
		if budget <= 0 {
			return false
		}
		budget--
		r, ve, err := ex.runOnce(&Replay{Vals: cand}, bound)
		if err != nil || ve == nil || r.Stuck != res.Stuck {
			return false
		}
		if score(r) < score(best) {
			best, bestErr = r, ve
			return true
		}
		return false
	}

	for improved := true; improved && budget > 0; {
		improved = false
		// Tail cuts, largest first.
		for cut := len(best.Picks) / 2; cut >= 1; cut /= 2 {
			if try(best.Picks[:len(best.Picks)-cut]) {
				improved = true
				break
			}
		}
		// Preemption removal: align each decided task pick with the task
		// that ran in the preceding step.
		pickIdx := 0
		for si := 0; si < len(best.Steps) && budget > 0; si++ {
			s := best.Steps[si]
			if !s.Decided {
				continue
			}
			idx := pickIdx
			pickIdx++
			if s.Branch || si == 0 {
				continue
			}
			prev := best.Steps[si-1]
			if prev.Branch || prev.Task == s.Task {
				continue
			}
			cand := append([]uint64(nil), best.Picks...)
			cand[idx] = uint64(prev.Val)
			if try(cand) {
				improved = true
				break
			}
		}
	}
	if score(best) >= score(res) {
		return nil, nil, nil
	}
	return best.Picks, best.Steps, bestErr
}

// score orders candidate schedules: fewer task switches first, then fewer
// decisions.
func score(r *Result) int {
	return r.Preemptions()*1000 + len(r.Picks)
}
