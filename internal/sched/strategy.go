package sched

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
)

// Option is one alternative at a scheduling decision: a schedulable task,
// or (for branch decisions) a branch value.
type Option struct {
	Task  int    // task id; for branch decisions, the branch value
	Name  string // task name
	Label string // the transition label the task is parked at
}

// Decision is one choice presented to a Strategy. For task decisions the
// returned index selects Options[i]; for branch decisions Options[i]
// represents branch value i. Decisions with a single option are
// auto-advanced by the controller and never reach the strategy.
type Decision struct {
	Branch  bool
	Options []Option
}

// Strategy picks among options at each scheduling decision. Pick is called
// from the controller goroutine only.
type Strategy interface {
	// Begin resets per-run state; the explorer calls it before every run.
	Begin()
	Pick(d Decision) int
}

// ---- schedule IDs ----

// scheduleVersion versions the ID wire format.
const scheduleVersion = 1

// EncodeSchedule packs a run's preemption bound and recorded picks into a
// replayable schedule ID: a version byte, the bound (+1, so 0 means
// unbounded), and the picks, all uvarint, base64url without padding. The
// bound travels in the ID because it shapes which decisions exist at all —
// replaying under a different bound would misalign the picks.
func EncodeSchedule(bound int, picks []uint64) string {
	buf := []byte{scheduleVersion}
	if bound < 0 {
		buf = binary.AppendUvarint(buf, 0)
	} else {
		buf = binary.AppendUvarint(buf, uint64(bound)+1)
	}
	for _, v := range picks {
		buf = binary.AppendUvarint(buf, v)
	}
	return base64.RawURLEncoding.EncodeToString(buf)
}

// DecodeSchedule reverses EncodeSchedule.
func DecodeSchedule(id string) (bound int, picks []uint64, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(id)
	if err != nil {
		return 0, nil, fmt.Errorf("sched: bad schedule id: %w", err)
	}
	if len(raw) < 2 || raw[0] != scheduleVersion {
		return 0, nil, fmt.Errorf("sched: bad schedule id: unknown version")
	}
	raw = raw[1:]
	b, n := binary.Uvarint(raw)
	if n <= 0 {
		return 0, nil, fmt.Errorf("sched: bad schedule id: truncated bound")
	}
	raw = raw[n:]
	bound = int(b) - 1
	for len(raw) > 0 {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return 0, nil, fmt.Errorf("sched: bad schedule id: truncated pick")
		}
		picks = append(picks, v)
		raw = raw[n:]
	}
	return bound, picks, nil
}

// ---- bounded exhaustive DFS with sleep sets ----

// dfsNode is one decision on the current DFS path.
type dfsNode struct {
	branch  bool
	options []Option
	// sleep maps option keys to their labels: transitions whose subtrees
	// are covered by a sibling branch already explored (Godefroid sleep
	// sets, with label-resource independence).
	sleep map[string]string
	tried []int // option indices explored, in order; last is current
	cur   int   // option index of the child currently being explored
}

func optKey(o Option, branch bool) string {
	if branch {
		return "b" + strconv.Itoa(o.Task)
	}
	return "t" + strconv.Itoa(o.Task) + "|" + o.Label
}

func (n *dfsNode) nextUntried() int {
	for i := range n.options {
		tried := false
		for _, j := range n.tried {
			if j == i {
				tried = true
				break
			}
		}
		if tried {
			continue
		}
		if _, slept := n.sleep[optKey(n.options[i], n.branch)]; slept {
			continue
		}
		return i
	}
	return -1
}

// DFS enumerates schedules depth-first. Drive it run by run: Pick replays
// the committed prefix and extends the frontier; Advance moves to the next
// unexplored branch and reports false when the space is exhausted. With
// NoSleep false, sleep-set pruning skips sibling orders of independent
// transitions (distinct '#resource' suffixes) that reach already-covered
// states.
type DFS struct {
	NoSleep bool

	nodes    []*dfsNode
	depth    int
	draining bool
	pruned   bool
}

func (d *DFS) Begin() {
	d.depth = 0
	d.draining = false
	d.pruned = false
}

// Pruned reports whether the last run hit an all-slept frontier and was
// finished without recording further nodes; its terminal state is covered
// by another branch and should not be double-counted.
func (d *DFS) Pruned() bool { return d.pruned }

func (d *DFS) Pick(dec Decision) int {
	if d.draining {
		return 0
	}
	if d.depth < len(d.nodes) {
		n := d.nodes[d.depth]
		d.depth++
		return n.cur
	}
	n := &dfsNode{branch: dec.Branch, options: dec.Options, sleep: d.childSleep()}
	pick := -1
	for i := range dec.Options {
		if _, slept := n.sleep[optKey(dec.Options[i], dec.Branch)]; !slept {
			pick = i
			break
		}
	}
	if pick < 0 {
		// Every option here is slept: this state's outgoing transitions are
		// covered elsewhere. Finish the run without growing the path so
		// Advance backtracks past it immediately.
		d.draining = true
		d.pruned = true
		return 0
	}
	n.cur = pick
	n.tried = []int{pick}
	d.nodes = append(d.nodes, n)
	d.depth++
	return pick
}

// childSleep computes the sleep set a new frontier node inherits: the
// parent's sleep set plus the parent's previously-explored siblings, keeping
// only entries independent of the transition just taken.
func (d *DFS) childSleep() map[string]string {
	out := map[string]string{}
	if d.NoSleep || len(d.nodes) == 0 {
		return out
	}
	p := d.nodes[len(d.nodes)-1]
	chosen := p.options[p.cur]
	keep := func(key, label string) {
		if independent(label, chosen.Label) {
			out[key] = label
		}
	}
	for k, l := range p.sleep {
		keep(k, l)
	}
	for _, i := range p.tried[:len(p.tried)-1] {
		o := p.options[i]
		keep(optKey(o, p.branch), o.Label)
	}
	return out
}

// Advance backtracks to the deepest node with an unexplored, non-slept
// option and commits to it for the next run. False means exhausted.
func (d *DFS) Advance() bool {
	for len(d.nodes) > 0 {
		n := d.nodes[len(d.nodes)-1]
		if next := n.nextUntried(); next >= 0 {
			n.cur = next
			n.tried = append(n.tried, next)
			return true
		}
		d.nodes = d.nodes[:len(d.nodes)-1]
	}
	return false
}

// ---- PCT randomized priority sampling ----

// PCT implements probabilistic concurrency testing (Burckhardt et al.):
// each task gets a random high priority; at d-1 random step indices the
// running task's priority drops below all others. Any bug of depth ≤ d is
// found with probability ≥ 1/(n·k^(d-1)) per run, so seeded sweeps give
// probabilistic coverage on programs too deep for exhaustive DFS. Branch
// decisions are sampled uniformly. Fully deterministic for a given seed.
type PCT struct {
	Seed  int64
	Depth int // number of priority change points (bug depth to target)
	Len   int // estimated run length, for change-point placement

	rng    *rand.Rand
	prio   map[int]int
	change map[int]int // task-decision step -> low priority to assign
	low    int
	step   int
	last   int
}

// NewPCT creates a PCT strategy; depth defaults to 3, length to 128.
func NewPCT(seed int64, depth, length int) *PCT {
	if depth <= 0 {
		depth = 3
	}
	if length <= 0 {
		length = 128
	}
	return &PCT{Seed: seed, Depth: depth, Len: length}
}

func (p *PCT) Begin() {
	p.rng = rand.New(rand.NewSource(p.Seed))
	p.prio = make(map[int]int)
	p.change = make(map[int]int)
	for i := 0; i < p.Depth-1; i++ {
		p.change[1+p.rng.Intn(p.Len)] = i
	}
	p.low = 0
	p.step = 0
	p.last = -1
}

func (p *PCT) Pick(d Decision) int {
	if d.Branch {
		return p.rng.Intn(len(d.Options))
	}
	p.step++
	if lowTo, hit := p.change[p.step]; hit && p.last >= 0 {
		p.prio[p.last] = lowTo - p.Depth // below every initial priority
	}
	best := 0
	bestPrio := -1 << 30
	for i, o := range d.Options {
		pr, ok := p.prio[o.Task]
		if !ok {
			// Lazy random high priority; assignment order is deterministic
			// because options arrive in task-id order.
			pr = p.Depth + p.rng.Intn(1<<20)
			p.prio[o.Task] = pr
		}
		if pr > bestPrio {
			best, bestPrio = i, pr
		}
	}
	p.last = d.Options[best].Task
	return best
}

// ---- replay ----

// Replay follows a recorded pick sequence: task decisions match by task id
// (robust to option-list shifts), branch decisions by value. A pick that no
// longer matches any option marks the replay diverged and falls back to the
// first option; picks beyond the recorded sequence fall back silently (used
// by the minimizer's tail-cut candidates).
type Replay struct {
	Vals     []uint64
	Diverged bool

	pos int
}

func (r *Replay) Begin() {
	r.pos = 0
	r.Diverged = false
}

func (r *Replay) Pick(d Decision) int {
	if r.pos >= len(r.Vals) {
		return 0
	}
	v := r.Vals[r.pos]
	r.pos++
	if d.Branch {
		if int(v) < len(d.Options) {
			return int(v)
		}
		r.Diverged = true
		return 0
	}
	for i, o := range d.Options {
		if uint64(o.Task) == v {
			return i
		}
	}
	r.Diverged = true
	return 0
}
