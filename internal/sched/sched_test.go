package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// lostUpdate is the canonical check-then-act toy: two tasks increment a
// shared counter with a scheduling point between read and write (buggy) or
// around the whole increment (fixed).
func lostUpdate(buggy bool) Program {
	return Program{
		Name: "toy-lost-update",
		Make: func() (*Instance, error) {
			x := 0
			inc := func() error {
				if buggy {
					Point("inc/read#x")
					v := x
					Point("inc/write#x")
					x = v + 1
				} else {
					Point("inc#x")
					x++
				}
				return nil
			}
			return &Instance{
				Threads: []Thread{{Name: "A", Run: inc}, {Name: "B", Run: inc}},
				Check: func(r *Result) error {
					if x != 2 {
						return fmt.Errorf("lost update: x=%d, want 2", x)
					}
					return nil
				},
			}, nil
		},
	}
}

func TestDFSFindsLostUpdate(t *testing.T) {
	ex := &Explorer{Prog: lostUpdate(true)}
	rep, err := ex.ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatalf("DFS explored %d schedules without finding the lost update", rep.Schedules)
	}
	v := rep.Violation
	if !strings.Contains(v.Err.Error(), "lost update") {
		t.Fatalf("unexpected violation: %v", v.Err)
	}
	if v.ScheduleID == "" {
		t.Fatal("violation has no schedule ID")
	}

	// The schedule ID must replay to the same failure, deterministically.
	for i := 0; i < 3; i++ {
		rrep, err := ex.ReplayID(v.ScheduleID)
		if err != nil {
			t.Fatal(err)
		}
		if rrep.Diverged {
			t.Fatal("replay diverged")
		}
		if rrep.Violation == nil || rrep.Violation.Err.Error() != v.Err.Error() {
			t.Fatalf("replay %d did not reproduce: %+v", i, rrep.Violation)
		}
	}

	// The minimized schedule must also fail, with no worse a score.
	if v.MinScheduleID != "" {
		rrep, err := ex.ReplayID(v.MinScheduleID)
		if err != nil {
			t.Fatal(err)
		}
		if rrep.Violation == nil {
			t.Fatal("minimized schedule does not reproduce the violation")
		}
		if len(v.MinSteps) > len(v.Steps) {
			t.Fatalf("minimized trace longer than original: %d > %d", len(v.MinSteps), len(v.Steps))
		}
	}
}

func TestDFSFixedVariantExhausts(t *testing.T) {
	ex := &Explorer{Prog: lostUpdate(false)}
	rep, err := ex.ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("fixed variant failed:\n%s", rep.Violation.Format())
	}
	if !rep.Complete {
		t.Fatalf("fixed variant did not exhaust DFS: %+v", rep)
	}
	if rep.Schedules < 2 {
		t.Fatalf("suspiciously few schedules: %d", rep.Schedules)
	}
}

// sleepProg has two dependent writers on x and one independent writer on y;
// the reachable terminal states are identical with and without sleep-set
// pruning, but pruning must visit fewer schedules.
func sleepProg(record func(string)) Program {
	return Program{
		Name: "toy-sleep",
		Make: func() (*Instance, error) {
			x, y := 0, 0
			set := func(p *int, v int, label string) func() error {
				return func() error {
					Point(label)
					*p = v
					return nil
				}
			}
			return &Instance{
				Threads: []Thread{
					{Name: "X1", Run: set(&x, 1, "w#x")},
					{Name: "X2", Run: set(&x, 2, "w#x")},
					{Name: "Y", Run: set(&y, 9, "w#y")},
				},
				Check: func(r *Result) error {
					record(fmt.Sprintf("x=%d,y=%d", x, y))
					return nil
				},
			}, nil
		},
	}
}

func TestSleepSetPruningPreservesTerminalStates(t *testing.T) {
	run := func(noSleep bool) (map[string]bool, *Report) {
		states := map[string]bool{}
		ex := &Explorer{
			Prog:            sleepProg(func(s string) { states[s] = true }),
			NoSleep:         noSleep,
			PreemptionBound: -1, // full space, so pruning is the only reducer
		}
		rep, err := ex.ExploreDFS()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violation != nil {
			t.Fatalf("unexpected violation:\n%s", rep.Violation.Format())
		}
		if !rep.Complete {
			t.Fatalf("did not exhaust: %+v", rep)
		}
		return states, rep
	}
	full, frep := run(true)
	pruned, prep := run(false)

	keys := func(m map[string]bool) []string {
		var out []string
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	if got, want := keys(pruned), keys(full); !equalStrings(got, want) {
		t.Fatalf("terminal states differ: with sleep %v, without %v", got, want)
	}
	if prep.Schedules >= frep.Schedules {
		t.Fatalf("sleep sets did not prune: %d (sleep) vs %d (full)", prep.Schedules, frep.Schedules)
	}
	if len(full) != 2 { // x ∈ {1,2}, y always 9
		t.Fatalf("expected 2 terminal states, got %v", keys(full))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPCTDeterministicPerSeed(t *testing.T) {
	run := func() *Report {
		// PCTLen near the real run length; the default 128 would scatter
		// change points far past this tiny program's last decision.
		ex := &Explorer{Prog: lostUpdate(true), PCTLen: 12}
		rep, err := ex.ExplorePCT(1, 200)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if (a.Violation == nil) != (b.Violation == nil) {
		t.Fatalf("PCT nondeterministic: %+v vs %+v", a, b)
	}
	if a.Violation == nil {
		t.Fatalf("PCT failed to find the lost update in 200 seeds")
	}
	if a.Seed != b.Seed || a.Schedules != b.Schedules {
		t.Fatalf("PCT nondeterministic: seed %d/%d, schedules %d/%d", a.Seed, b.Seed, a.Schedules, b.Schedules)
	}
	if a.Violation.ScheduleID != b.Violation.ScheduleID {
		t.Fatalf("PCT schedule IDs differ: %s vs %s", a.Violation.ScheduleID, b.Violation.ScheduleID)
	}
	// A PCT-found failure replays through the generic replay path.
	ex := &Explorer{Prog: lostUpdate(true), PCTLen: 12}
	rrep, err := ex.ReplayID(a.Violation.ScheduleID)
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Violation == nil || rrep.Diverged {
		t.Fatalf("PCT schedule did not replay: %+v", rrep)
	}
}

func TestScheduleIDRoundTrip(t *testing.T) {
	cases := []struct {
		bound int
		picks []uint64
	}{
		{-1, nil},
		{0, []uint64{0}},
		{2, []uint64{1, 0, 3, 127, 128, 1 << 20}},
	}
	for _, c := range cases {
		id := EncodeSchedule(c.bound, c.picks)
		b, p, err := DecodeSchedule(id)
		if err != nil {
			t.Fatal(err)
		}
		if b != c.bound || len(p) != len(c.picks) {
			t.Fatalf("round trip mismatch: %d/%v -> %d/%v", c.bound, c.picks, b, p)
		}
		for i := range p {
			if p[i] != c.picks[i] {
				t.Fatalf("pick %d mismatch: %v vs %v", i, p, c.picks)
			}
		}
	}
	if _, _, err := DecodeSchedule("!!!not-base64!!!"); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
	if _, _, err := DecodeSchedule(""); err == nil {
		t.Fatal("decoding empty succeeded")
	}
}

// TestWaitCooperative converts a real channel block into a controller-polled
// predicate: every schedule must deliver the value, and DFS must exhaust
// without a stuck state.
func TestWaitCooperative(t *testing.T) {
	prog := Program{
		Name: "toy-wait",
		Make: func() (*Instance, error) {
			ch := make(chan int, 1)
			got := 0
			return &Instance{
				Threads: []Thread{
					{Name: "recv", Run: func() error {
						ok := Wait("recv#ch", func() bool {
							select {
							case v := <-ch:
								got = v
								return true
							default:
								return false
							}
						})
						if !ok { // uncontrolled fallback
							got = <-ch
						}
						return nil
					}},
					{Name: "send", Run: func() error {
						Point("send#ch")
						ch <- 42
						return nil
					}},
				},
				Check: func(r *Result) error {
					if got != 42 {
						return fmt.Errorf("got %d, want 42", got)
					}
					return nil
				},
			}, nil
		},
	}
	ex := &Explorer{Prog: prog}
	rep, err := ex.ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("wait program failed:\n%s", rep.Violation.Format())
	}
	if !rep.Complete {
		t.Fatalf("wait program did not exhaust: %+v", rep)
	}
}

func TestChooseEnumeratesBranches(t *testing.T) {
	seen := map[int]bool{}
	prog := Program{
		Name: "toy-choose",
		Make: func() (*Instance, error) {
			picked := -1
			return &Instance{
				Threads: []Thread{{Name: "T", Run: func() error {
					picked = Choose("branch", 3)
					return nil
				}}},
				Check: func(r *Result) error {
					seen[picked] = true
					return nil
				},
			}, nil
		},
	}
	ex := &Explorer{Prog: prog}
	rep, err := ex.ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Schedules != 3 {
		t.Fatalf("expected 3 complete schedules, got %+v", rep)
	}
	for b := 0; b < 3; b++ {
		if !seen[b] {
			t.Fatalf("branch %d never explored (seen %v)", b, seen)
		}
	}
}

func TestStuckDetection(t *testing.T) {
	prog := Program{
		Name: "toy-stuck",
		Make: func() (*Instance, error) {
			return &Instance{
				Threads: []Thread{
					{Name: "A", Run: func() error {
						Wait("never#a", func() bool { return false })
						return nil
					}},
					{Name: "B", Run: func() error {
						Wait("never#b", func() bool { return false })
						return nil
					}},
				},
			}, nil
		},
	}
	ex := &Explorer{Prog: prog}
	rep, err := ex.ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil || !strings.Contains(rep.Violation.Err.Error(), "stuck") {
		t.Fatalf("stuck state not reported: %+v", rep.Violation)
	}
}

func TestStepLimitTruncates(t *testing.T) {
	prog := Program{
		Name: "toy-spin",
		Make: func() (*Instance, error) {
			return &Instance{
				Threads: []Thread{{Name: "spin", Run: func() error {
					for i := 0; i < 100000; i++ {
						Point("spin#x")
					}
					return nil
				}}},
				Check: func(r *Result) error {
					return errors.New("check must not run on truncated states")
				},
			}, nil
		},
	}
	ex := &Explorer{Prog: prog, StepLimit: 50, MaxSchedules: 1}
	rep, err := ex.ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("truncated run was checked: %v", rep.Violation.Err)
	}
	if rep.Truncated != 1 || rep.Complete {
		t.Fatalf("truncation not reported: %+v", rep)
	}
}

func TestPreemptionBoundShrinksSpace(t *testing.T) {
	count := func(bound int) int {
		ex := &Explorer{Prog: lostUpdate(false), PreemptionBound: bound, NoSleep: true}
		rep, err := ex.ExploreDFS()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete {
			t.Fatalf("did not exhaust at bound %d", bound)
		}
		return rep.Schedules
	}
	b0 := count(-2) // -2 normalizes to -1? bound() maps any negative to -1 (unbounded)
	bTight := count(1)
	if bTight >= b0 {
		t.Fatalf("preemption bound did not shrink the space: %d (bound 1) vs %d (unbounded)", bTight, b0)
	}
}

// TestSeamDisabledSemantics pins the uncontrolled behaviour: Point no-op,
// Wait false, Choose 0 — and the same for unregistered goroutines while a
// controller IS installed.
func TestSeamDisabledSemantics(t *testing.T) {
	if Enabled() {
		t.Fatal("controller unexpectedly installed")
	}
	Point("free#x")
	if Wait("free#x", func() bool { return true }) {
		t.Fatal("Wait must return false with no controller")
	}
	if Choose("free#x", 5) != 0 {
		t.Fatal("Choose must return 0 with no controller")
	}

	// With a controller installed, a helper goroutine the program spawned
	// outside the controller passes through the seam untouched.
	prog := Program{
		Name: "toy-unregistered",
		Make: func() (*Instance, error) {
			done := make(chan int, 1)
			val := 0
			return &Instance{
				Threads: []Thread{{Name: "T", Run: func() error {
					go func() {
						Point("helper#x")
						done <- Choose("helper#x", 4) + 7
					}()
					ok := Wait("join#done", func() bool {
						select {
						case v := <-done:
							val = v
							return true
						default:
							return false
						}
					})
					if !ok {
						val = <-done
					}
					return nil
				}}},
				Check: func(r *Result) error {
					if val != 7 { // helper's Choose must return 0
						return fmt.Errorf("helper saw val %d", val)
					}
					return nil
				},
			}, nil
		},
	}
	ex := &Explorer{Prog: prog}
	rep, err := ex.ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("unregistered goroutine misbehaved:\n%s", rep.Violation.Format())
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	sentinel := errors.New("boom")
	prog := Program{
		Name: "toy-panic",
		Make: func() (*Instance, error) {
			return &Instance{
				Threads: []Thread{{Name: "T", Run: func() error {
					Point("pre#x")
					panic(sentinel)
				}}},
				Check: func(r *Result) error {
					err := r.Errs["T"]
					var pe *PanicError
					if !errors.As(err, &pe) || !errors.Is(err, sentinel) {
						return fmt.Errorf("panic not surfaced: %v", err)
					}
					return nil
				},
			}, nil
		},
	}
	rep, err := (&Explorer{Prog: prog}).ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("panic handling broken:\n%s", rep.Violation.Format())
	}
}
