package sched

import (
	"testing"
)

// BenchmarkSchedPointOverhead measures the disabled seam: one atomic
// pointer load and a nil check. This is the cost every instrumented hot
// path (kv commands, lock acquisitions, engine statements) pays in
// production builds, so it must stay in low single-digit nanoseconds.
func BenchmarkSchedPointOverhead(b *testing.B) {
	if Enabled() {
		b.Fatal("controller installed; benchmark measures the disabled path")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Point("bench/disabled#key")
	}
}

// TestSchedPointOverheadBudget enforces the <5ns/op acceptance bound. It
// takes the best of three benchmark runs to shrug off scheduler noise on
// shared CI machines.
func TestSchedPointOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race detector instruments the atomic load; budget holds for production builds only")
	}
	if testing.CoverMode() != "" {
		t.Skip("coverage counters instrument the fast path; budget holds for production builds only")
	}
	const budgetNs = 5.0
	best := -1.0
	for i := 0; i < 3; i++ {
		res := testing.Benchmark(BenchmarkSchedPointOverhead)
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if best < 0 || ns < best {
			best = ns
		}
	}
	t.Logf("disabled sched.Point: %.2f ns/op (budget %v ns)", best, budgetNs)
	if best >= budgetNs {
		t.Fatalf("disabled sched.Point costs %.2f ns/op, budget %v ns", best, budgetNs)
	}
}
