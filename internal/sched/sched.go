// Package sched is a cooperative deterministic scheduler for model-checking
// the interleaving bugs of §4: instead of sampling schedules by wall-clock
// accident (the chaos harness), small multi-goroutine transaction programs
// run under a controller that decides, at every instrumented transition,
// which goroutine moves next — so the two-step interleaving that breaks an
// ad hoc transaction is *enumerated*, not hoped for.
//
// The package has three layers:
//
//   - The seam: Point / Wait / Choose calls instrumented into the contended
//     transitions of lockmgr, engine, kv, the ad hoc lock primitives, and
//     sim crash points. With no controller installed they are a nil atomic
//     pointer load (<5ns, see BenchmarkSchedPointOverhead) — free in
//     production builds.
//   - The controller: registers the program's goroutines (tasks), parks each
//     at its seam calls, and resumes exactly one at a time as directed by a
//     Strategy. Real blocking (lock waits, channel receives) is converted
//     into cooperative predicate waits so the controller always knows which
//     tasks can run.
//   - The explorer (explore.go): runs a Program under bounded exhaustive DFS
//     with sleep-set pruning, or PCT-style randomized priority sampling,
//     checks every terminal state, and on failure prints a replayable
//     schedule ID plus a delta-minimized trace.
//
// sched imports only the standard library, so every internal package may
// instrument itself without import cycles.
package sched

import (
	"bytes"
	"runtime"
	"strconv"
	"sync/atomic"
)

// active is the process-global controller. Instrumented code consults it on
// every seam call; nil means "run free" (production).
var active atomic.Pointer[Controller]

// Enabled reports whether a controller is installed. Instrumented code uses
// it to skip label construction on the fast path:
//
//	if sched.Enabled() {
//		sched.Point("kv/get#" + key)
//	}
func Enabled() bool { return active.Load() != nil }

// Point is the instrumentation seam: a named scheduling point placed
// immediately *before* a shared-state transition. When a controller is
// installed and the calling goroutine is one of its registered tasks, the
// goroutine parks until the controller schedules it; otherwise Point is a
// no-op. Labels carry an optional resource suffix after '#' (for example
// "lockmgr/acquire#posts:3") which the DFS explorer's sleep-set pruning uses
// as an independence hint.
func Point(label string) {
	c := active.Load()
	if c == nil {
		return
	}
	c.point(label)
}

// Wait converts a real blocking operation into a cooperative one. ready must
// be a non-blocking poll (for example a select with default on the channel
// the caller would otherwise block on); it may be called by the controller
// goroutine any number of times and must be side-effect-free until it
// returns true. A true return is latched: the poll may consume the awaited
// signal (stash the received value for the caller), because the controller
// never polls again and guarantees Wait returns true afterwards, even when
// the run is being drained.
//
// When a controller is installed and the calling goroutine is a registered
// task, Wait parks the task as blocked-on-ready and returns true once the
// controller has observed ready() == true and scheduled the task again. In
// every other case Wait returns false immediately WITHOUT calling ready, and
// the caller must fall back to its real blocking path.
func Wait(label string, ready func() bool) bool {
	c := active.Load()
	if c == nil {
		return false
	}
	return c.wait(label, ready)
}

// Choose is a branch decision: the controller picks a value in [0, n). It
// turns environment choices — most importantly "does the process crash at
// this crash point?" — into explorable scheduling events: bounded DFS
// enumerates every branch, PCT samples them. Without a controller (or from
// an unregistered goroutine) Choose returns 0, so production code takes the
// first branch unconditionally.
func Choose(label string, n int) int {
	c := active.Load()
	if c == nil || n <= 1 {
		return 0
	}
	return c.choose(label, n)
}

// Annotate attaches a free-form note to the trace step that resumed the
// calling task — the step it is currently executing. Instrumented code uses
// it to stamp runtime identities (most importantly "txn=<id>" at the commit
// seam) onto the schedule trace, so offline tools can join WAL records to
// the exact step that produced them. Notes never influence scheduling: they
// are not part of the recorded picks, so schedule IDs, replay, and
// delta-minimization are unaffected. Without a controller (or from an
// unregistered goroutine) Annotate is a no-op.
func Annotate(note string) {
	c := active.Load()
	if c == nil {
		return
	}
	c.annotate(note)
}

// gid returns the current goroutine's id by parsing the runtime stack
// header ("goroutine 123 [running]:"). Only called while a controller is
// installed; the microsecond cost is irrelevant during exploration and never
// paid in production.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	i := bytes.IndexByte(s, ' ')
	if i < 0 {
		return 0
	}
	id, err := strconv.ParseUint(string(s[:i]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// resourceOf extracts the independence hint from a label: the substring
// after the first '#', or "" when the label has none. Two transitions are
// treated as independent only when both carry a resource and the resources
// differ; everything else is conservatively dependent.
func resourceOf(label string) string {
	for i := 0; i < len(label); i++ {
		if label[i] == '#' {
			return label[i+1:]
		}
	}
	return ""
}

// independent reports whether two transitions, identified by their pending
// labels, commute for sleep-set purposes.
func independent(a, b string) bool {
	ra, rb := resourceOf(a), resourceOf(b)
	return ra != "" && rb != "" && ra != rb
}
