package chaos

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"adhoctx/internal/analyzer"
	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/server"
	"adhoctx/internal/storage"
	"adhoctx/internal/wire"
)

// oracleStack is one engine with history capture, optionally served over
// TCP.
type oracleStack struct {
	eng  *engine.Engine
	hist *analyzer.History
}

func newOracleStack(t *testing.T) *oracleStack {
	t.Helper()
	eng := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: 2 * time.Second})
	eng.CreateTable(storage.NewSchema("accounts",
		storage.Column{Name: "bal", Type: storage.TInt},
	))
	txn := eng.Begin(engine.IsolationDefault)
	if _, err := txn.Insert("accounts", map[string]storage.Value{"bal": int64(100)}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	hist := analyzer.NewHistory()
	eng.SetTracer(hist)
	return &oracleStack{eng: eng, hist: hist}
}

// anomalySignature reduces a history to its committed conflict-graph edge
// conflicts, unit names erased — comparable across the wire/in-process
// divide, where transaction IDs differ but the anomaly structure must not.
func anomalySignature(items []analyzer.Item) []string {
	g := analyzer.BuildConflictGraph(analyzer.CommittedOnly(items))
	var sig []string
	for _, succs := range g.Edges {
		for _, c := range succs {
			sig = append(sig, fmt.Sprintf("%s:%d %v->%v", c.Table, c.PK, c.FirstKind, c.SecondKind))
		}
	}
	sort.Strings(sig)
	return sig
}

// stepper abstracts one transaction handle so the same interleaving script
// drives both the remote and the in-process stacks.
type stepper interface {
	read() error
	write(bal int64) error
	commit() error
}

type wireStepper struct{ txn *client.Txn }

func (s *wireStepper) read() error {
	_, err := s.txn.Select("accounts", storage.ByPK(1), wire.LockNone)
	return err
}
func (s *wireStepper) write(bal int64) error {
	_, err := s.txn.Update("accounts", storage.ByPK(1), map[string]storage.Value{"bal": bal})
	return err
}
func (s *wireStepper) commit() error { return s.txn.Commit() }

type localStepper struct{ txn *engine.Txn }

func (s *localStepper) read() error {
	_, err := s.txn.Select("accounts", storage.ByPK(1))
	return err
}
func (s *localStepper) write(bal int64) error {
	_, err := s.txn.Update("accounts", storage.ByPK(1), map[string]storage.Value{"bal": bal})
	return err
}
func (s *localStepper) commit() error { return s.txn.Commit() }

// lostUpdateScript runs the classic r1 r2 w1 c1 w2 c2 interleaving: both
// transactions read the stale balance, then write absolute values computed
// from it. Both commit, and the second write silently erases the first —
// the paper's lost update, in six steps.
func lostUpdateScript(t *testing.T, t1, t2 stepper) {
	t.Helper()
	steps := []struct {
		name string
		run  func() error
	}{
		{"r1", t1.read},
		{"r2", t2.read},
		{"w1", func() error { return t1.write(110) }},
		{"c1", t1.commit},
		{"w2", func() error { return t2.write(120) }},
		{"c2", t2.commit},
	}
	for _, s := range steps {
		if err := s.run(); err != nil {
			t.Fatalf("step %s: %v", s.name, err)
		}
	}
}

// serialScript is the corrected protocol: the same two transactions run
// strictly one after the other (as FOR UPDATE ordering would force), so the
// committed history is serial.
func serialScript(t *testing.T, t1, t2 stepper) {
	t.Helper()
	for i, s := range []stepper{t1, t2} {
		if err := s.read(); err != nil {
			t.Fatalf("txn %d read: %v", i, err)
		}
		if err := s.write(int64(110 + 10*i)); err != nil {
			t.Fatalf("txn %d write: %v", i, err)
		}
		if err := s.commit(); err != nil {
			t.Fatalf("txn %d commit: %v", i, err)
		}
	}
}

// runWire executes script against a served stack over real TCP with two
// pooled client transactions, returning the server-side history.
func runWire(t *testing.T, script func(*testing.T, stepper, stepper)) []analyzer.Item {
	t.Helper()
	st := newOracleStack(t)
	srv := server.New(st.eng, nil, server.Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cli := client.New(client.Config{Addr: srv.Addr().String(), PoolSize: 2})
	t.Cleanup(func() { _ = cli.Close() })

	t1, err := cli.Begin(engine.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cli.Begin(engine.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	script(t, &wireStepper{t1}, &wireStepper{t2})
	return st.hist.Items()
}

// runLocal executes the same script directly on an engine.
func runLocal(t *testing.T, script func(*testing.T, stepper, stepper)) []analyzer.Item {
	t.Helper()
	st := newOracleStack(t)
	t1 := st.eng.Begin(engine.RepeatableRead)
	t2 := st.eng.Begin(engine.RepeatableRead)
	script(t, &localStepper{t1}, &localStepper{t2})
	return st.hist.Items()
}

// TestWireOracleMatchesInProcess is the end-to-end oracle contract: for the
// same interleaving, the analyzer must find the same anomaly set whether
// the history was produced over real TCP or in-process. The wire may
// neither hide an anomaly (lost update must survive the round trip) nor
// add one (a serial run must stay clean).
func TestWireOracleMatchesInProcess(t *testing.T) {
	wireBad := runWire(t, lostUpdateScript)
	localBad := runLocal(t, lostUpdateScript)
	if cyc := analyzer.CheckCommitted(wireBad); cyc == nil {
		t.Fatal("lost update over the wire not detected")
	}
	if cyc := analyzer.CheckCommitted(localBad); cyc == nil {
		t.Fatal("lost update in-process not detected")
	}
	if w, l := anomalySignature(wireBad), anomalySignature(localBad); !reflect.DeepEqual(w, l) {
		t.Fatalf("anomaly sets differ:\n  wire:  %v\n  local: %v", w, l)
	}

	wireOK := runWire(t, serialScript)
	localOK := runLocal(t, serialScript)
	if cyc := analyzer.CheckCommitted(wireOK); cyc != nil {
		t.Fatalf("wire added an anomaly to a serial run: %v", cyc)
	}
	if cyc := analyzer.CheckCommitted(localOK); cyc != nil {
		t.Fatalf("in-process serial run not clean: %v", cyc)
	}
	if w, l := anomalySignature(wireOK), anomalySignature(localOK); !reflect.DeepEqual(w, l) {
		t.Fatalf("serial-run signatures differ:\n  wire:  %v\n  local: %v", w, l)
	}
}
