package chaos

import (
	"strings"
	"testing"

	"adhoctx/internal/faults"
)

// TestRestartCleanSeed: no crashes, no network faults — every transfer must
// succeed and the cold re-open must rebuild exactly the acked state.
func TestRestartCleanSeed(t *testing.T) {
	rep, err := RunRestart(RestartConfig{
		Seed: 1, Clients: 3, Ops: 8, Rows: 4,
		Restarts: 0, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Restarts defaults to 1 when <=0, so one crash is expected even here;
	// what matters is that the oracles hold.
	if rep.Failed() {
		t.Fatalf("clean-ish seed failed:\n%s", rep.Summary())
	}
	if rep.AckedMarkers == 0 {
		t.Fatal("no transfer was ever acknowledged")
	}
}

// TestRestartSeedsPass sweeps seeds through full restart chaos: crash points
// armed, the whole stack killed and re-opened from disk, oracles on the
// recovered state.
func TestRestartSeedsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("restart chaos sweep is slow")
	}
	reports, failed, err := RunRestartSeeds(1, 6, func(seed int64) RestartConfig {
		return RestartConfig{
			Seed: seed, Clients: 4, Ops: 12, Rows: 6,
			Restarts: 2, Dir: t.TempDir(),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed != nil {
		t.Fatalf("seed %d violated durability oracles:\n%s", failed.Seed, failed.Summary())
	}
	boots, crashes := 0, 0
	for _, rep := range reports {
		boots += rep.Boots
		crashes += len(rep.CrashPoints)
	}
	// Every seed boots at least twice (initial + cold verify); the sweep as
	// a whole must have actually crashed somewhere, or it tested nothing.
	if crashes == 0 {
		t.Fatal("sweep fired no crash points")
	}
	if boots < len(reports)*2+crashes {
		t.Fatalf("boots=%d, want >= %d (2 per seed + %d crashes)", boots, len(reports)*2+crashes, crashes)
	}
}

// TestRestartWithNetworkFaults layers the network fault plan on top of the
// restart cycle — torn connections AND torn processes.
func TestRestartWithNetworkFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("restart chaos with faults is slow")
	}
	rep, err := RunRestart(RestartConfig{
		Seed: 7, Clients: 4, Ops: 10, Rows: 6,
		Restarts: 1, Plan: faults.DefaultPlan(), Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("seed with network faults failed:\n%s", rep.Summary())
	}
}

// TestRestartReplayCommand pins the replay line's shape.
func TestRestartReplayCommand(t *testing.T) {
	cmd := RestartReplayCommand(RestartConfig{Seed: 42, Restarts: 3})
	for _, want := range []string{"-restart", "-seed 42", "-crashes 3"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("replay %q missing %q", cmd, want)
		}
	}
}
