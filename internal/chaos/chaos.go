// Package chaos is the oracle-checked fault-injection harness for the
// networked stack: it runs the paper's Figure-2-style contended transfer
// workload over real TCP while internal/faults tears connections and
// internal/sim crash points kill the server mid-COMMIT, then checks the
// surviving state against three oracles — conflict-serializability of the
// committed history (internal/analyzer), conservation of the total balance,
// and zero leaked locks after every client has disconnected.
//
// Everything is derived from one seed: the network fault schedule, each
// worker's transfer sequence, and the crash points' timing. A failing seed
// is therefore a bug report — Report.Replay holds the command line that
// reproduces it.
//
// The methodology is Jepsen's, scaled down: generate real histories under
// real faults, and let a checker — not the implementation's own claims —
// decide whether isolation held (see PAPERS.md on Jepsen and ALICE).
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"adhoctx/internal/analyzer"
	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/faults"
	"adhoctx/internal/lockmgr"
	"adhoctx/internal/obs"
	"adhoctx/internal/server"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

// InitialBalance is each seeded account's starting balance; transfers
// conserve the total, which is one of the run's oracles.
const InitialBalance int64 = 100

// Config parameterizes one chaos run. Everything observable is a function
// of Seed (plus scheduler interleaving — see internal/faults on
// pseudo-determinism).
type Config struct {
	// Seed drives the fault schedule, the workload, and crash timing.
	Seed int64
	// Clients is the number of concurrent transfer workers (default 8).
	Clients int
	// Ops is the number of transfers each worker attempts (default 40).
	Ops int
	// Rows is the number of accounts (default 8; at least 2).
	Rows int
	// Crashes is how many server crash/recover cycles to arm at COMMIT
	// crash points (default 0 = none).
	Crashes int
	// Plan is the network fault schedule. The zero Plan injects nothing;
	// DefaultConfig uses faults.DefaultPlan.
	Plan faults.Plan
	// LockTimeout bounds engine lock waits (default 2s).
	LockTimeout time.Duration
	// GroupCommit enables WAL group commit in the engine under test; the
	// crash rotation then includes the wal/groupcommit points, so batches
	// die whole mid-flush.
	GroupCommit bool
	// LockShards partitions the engine's lock manager (0 = lockmgr
	// default).
	LockShards int
	// OCC runs the built-in transfer workload as optimistic transactions:
	// snapshot reads without locks, commit-time backward validation, client
	// retries on the typed conflict. The crash rotation then includes the
	// engine's OCC validate/commit points, so the process also dies inside
	// the visible-but-not-yet-durable commit window.
	OCC bool
	// Fsync is the simulated WAL device flush time. Nonzero makes the
	// flush a real bottleneck so group-commit batches actually form.
	Fsync time.Duration
	// Obs, when non-nil, receives server and fault-injector metrics.
	Obs *obs.Registry
	// Workload is the schema + operations + state oracle to run. Nil means
	// the built-in contended-transfer workload over Rows accounts.
	Workload *Workload
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Ops <= 0 {
		c.Ops = 40
	}
	if c.Rows < 2 {
		c.Rows = 8
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 2 * time.Second
	}
	return c
}

// DefaultConfig is the full fault schedule at the given seed — what
// cmd/adhocchaos runs per seed.
func DefaultConfig(seed int64) Config {
	c := Config{Seed: seed, Crashes: 1, Plan: faults.DefaultPlan()}
	return c.withDefaults()
}

// GroupCommitConfig is DefaultConfig on the PR-4 engine configuration:
// group commit over a 500µs-flush device with the sharded lock manager, and
// the wal/groupcommit crash points in the rotation.
func GroupCommitConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.GroupCommit = true
	c.Fsync = 500 * time.Microsecond
	return c
}

// OCCConfig is DefaultConfig with the transfer workload in optimistic mode
// and the engine's OCC crash points in the rotation.
func OCCConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.OCC = true
	return c
}

// Report is the outcome of one seed.
type Report struct {
	Seed int64
	// Workload names the workload that ran.
	Workload string
	// Transfers and TransferErrs count worker-level RunTxn outcomes; an
	// error here is a worker that exhausted its retries, which under heavy
	// fault schedules is legitimate (the oracles below are what must hold).
	Transfers, TransferErrs int
	// Committed is the number of committed transactions in the server-side
	// history (includes duplicates from ambiguous-commit retries).
	Committed int
	// Retries is the clients' total backoff-retry count.
	Retries int64
	// Faults counts injected network faults by kind.
	Faults map[faults.Kind]int64
	// CrashPoints are the server crash points that fired, in order.
	CrashPoints []string
	// Recoveries is the number of successful WAL recoveries.
	Recoveries int
	// Observed is the workload oracle's one-line view of the final state
	// (the transfer workload reports "sum=<total balance>").
	Observed string
	// LeakedLocks is the lock-manager count after all clients disconnected
	// (oracle: 0).
	LeakedLocks int
	// Violations lists every oracle violation; empty means the seed passed.
	Violations []string
	// Replay is the command line that reproduces this run.
	Replay string
	// Elapsed is the wall time of the workload phase.
	Elapsed time.Duration
}

// Failed reports whether any oracle was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Summary renders the report as one line per fact.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d transfers (%d failed), %d committed txns, %d retries, %s\n",
		r.Seed, r.Transfers, r.TransferErrs, r.Committed, r.Retries, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  faults: drop=%d truncate=%d wdelay=%d rdelay=%d; crashes=%v recoveries=%d\n",
		r.Faults[faults.Drop], r.Faults[faults.Truncate], r.Faults[faults.WriteDelay],
		r.Faults[faults.ReadDelay], r.CrashPoints, r.Recoveries)
	if r.Failed() {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
		fmt.Fprintf(&b, "  replay: %s\n", r.Replay)
	} else {
		fmt.Fprintf(&b, "  oracles: serializable committed history, %s, leaked locks=0\n", r.Observed)
	}
	return b.String()
}

// ReplayCommand renders the command line that reruns cfg.
func ReplayCommand(cfg Config) string {
	cfg = cfg.withDefaults()
	cmd := fmt.Sprintf("go run ./cmd/adhocchaos -seed %d -seeds 1 -clients %d -ops %d -rows %d -crashes %d",
		cfg.Seed, cfg.Clients, cfg.Ops, cfg.Rows, cfg.Crashes)
	if cfg.GroupCommit {
		cmd += " -groupcommit"
	}
	if cfg.LockShards > 0 {
		cmd += fmt.Sprintf(" -shards %d", cfg.LockShards)
	}
	if cfg.Fsync > 0 {
		cmd += fmt.Sprintf(" -fsync %s", cfg.Fsync)
	}
	if cfg.OCC {
		cmd += " -occ"
	}
	return cmd
}

// supervised is the crash/restart supervisor's shared server handle.
type supervised struct {
	mu  sync.Mutex
	srv *server.Server
}

func (s *supervised) get() *server.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.srv
}

func (s *supervised) set(srv *server.Server) {
	s.mu.Lock()
	s.srv = srv
	s.mu.Unlock()
}

// Run executes one seed end to end: seed the accounts, serve them over TCP
// behind the fault injector, hammer them with concurrent transfer workers
// while the supervisor crash-kills and recovers the server, then run the
// oracles. The returned error is reserved for harness breakage (failure to
// listen, recovery failure); oracle violations land in the Report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	wl := cfg.Workload
	if wl == nil {
		if cfg.OCC {
			wl = transferOCCWorkload(cfg.Rows)
		} else {
			wl = transferWorkload(cfg.Rows)
		}
	}
	rep := &Report{Seed: cfg.Seed, Workload: wl.Name, Replay: ReplayCommand(cfg), Faults: make(map[faults.Kind]int64)}
	if wl.Replay != "" {
		rep.Replay = wl.Replay
	}

	// One plan shared by the server's commit points and (under group
	// commit) the WAL's flush points: wherever the process dies, the same
	// supervisor recovers it.
	plan := &sim.CrashPlan{}

	// MySQL dialect: RepeatableRead plus FOR UPDATE locking reads — the
	// configuration whose committed histories must be serializable for this
	// workload, so any cycle the analyzer finds is a real bug.
	eng := engine.New(engine.Config{
		Dialect:     engine.MySQL,
		LockTimeout: cfg.LockTimeout,
		WALFsync:    sim.Latency{Fsync: cfg.Fsync},
		GroupCommit: cfg.GroupCommit,
		LockShards:  cfg.LockShards,
		Crash:       plan,
	})
	for _, sch := range wl.Tables {
		eng.CreateTable(sch)
	}
	seedTxn := eng.Begin(engine.IsolationDefault)
	if err := wl.Seed(seedTxn); err != nil {
		return nil, fmt.Errorf("chaos: seed: %w", err)
	}
	if err := seedTxn.Commit(); err != nil {
		return nil, fmt.Errorf("chaos: seed commit: %w", err)
	}

	// Server-side history capture: installed after seeding so the oracle
	// sees exactly the workload's transactions.
	hist := analyzer.NewHistory()
	eng.SetTracer(hist)

	inj := faults.New(cfg.Seed, cfg.Plan)
	if cfg.Obs != nil {
		inj.WireObs(cfg.Obs)
	}

	// The supervisor's private rng: crash timing must not perturb the
	// workers' transfer sequences.
	supRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	points := []string{server.CrashPointCommitBefore, server.CrashPointCommitAfter}
	if cfg.GroupCommit {
		// The WAL flush points only exist on the group-commit path.
		points = append(points, wal.CrashPointBeforeFsync, wal.CrashPointAfterFsync)
	}
	if cfg.OCC {
		// The OCC points only fire on optimistic commits: engine/occ-commit
		// kills the process after the write-set is applied in memory but
		// before the WAL append — the commit was never acked, so recovery
		// must make it vanish.
		points = append(points, engine.CrashPointOCCValidate, engine.CrashPointOCCCommit)
	}
	armNext := func() {
		// Fire within the first handful of visits after arming, so every
		// configured crash actually happens during the run.
		plan.Arm(points[supRng.Intn(len(points))], 2+supRng.Intn(6))
	}
	if cfg.Crashes > 0 {
		armNext()
	}

	srvCfg := server.Config{
		MaxSessions: cfg.Clients + 4,
		IdleTimeout: 2 * time.Second,
		WrapConn:    inj.WrapConn,
		Crash:       plan,
	}
	sup := &supervised{}
	first := server.New(eng, nil, srvCfg)
	if cfg.Obs != nil {
		first.WireObs(cfg.Obs)
	}
	if err := first.Start(); err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	addr := first.Addr().String()
	sup.set(first)

	// Supervisor: on crash, reap the dead server's goroutines, recover the
	// WAL, and restart on the same address — the ops loop the paper's web
	// stacks rely on, automated.
	workDone := make(chan struct{})
	supDone := make(chan struct{})
	var supErr error
	go func() {
		defer close(supDone)
		crashed := 0
		for {
			cur := sup.get()
			select {
			case <-workDone:
				return
			case <-cur.Crashed():
				rep.CrashPoints = append(rep.CrashPoints, cur.CrashPoint())
				_ = cur.Close()
				if err := eng.Recover(); err != nil {
					supErr = fmt.Errorf("chaos: recovery: %w", err)
					return
				}
				rep.Recoveries++
				crashed++
				if crashed < cfg.Crashes {
					armNext()
				}
				next := server.New(eng, nil, withAddr(srvCfg, addr))
				if cfg.Obs != nil {
					next.WireObs(cfg.Obs)
				}
				if err := restart(next); err != nil {
					supErr = fmt.Errorf("chaos: restart: %w", err)
					return
				}
				sup.set(next)
			}
		}
	}()

	// Pooled client shared by all workers, as a web app shares its
	// connection pool. RetryConnLost is the paper's blind-retry strategy —
	// safe here exactly because the workload is self-conserving and the
	// oracle judges the committed history, not the client's beliefs.
	cli := client.New(client.Config{
		Addr:           addr,
		PoolSize:       cfg.Clients,
		MaxRetries:     40,
		BackoffBase:    300 * time.Microsecond,
		DialTimeout:    time.Second,
		RequestTimeout: 2 * cfg.LockTimeout,
		RetryConnLost:  true,
		Dial:           inj.Dial,
	})

	start := time.Now()
	var wg sync.WaitGroup
	var statsMu sync.Mutex
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(worker int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + worker))
			for i := 0; i < cfg.Ops; i++ {
				// Random row choice means random lock order: the deadlock
				// recipe, on purpose.
				err := cli.RunTxnWith(engine.IsolationDefault, client.BeginOpts{OCC: wl.OCC},
					func(txn *client.Txn) error {
						return wl.Op(rng, txn)
					})
				statsMu.Lock()
				if err != nil {
					rep.TransferErrs++
				} else {
					rep.Transfers++
				}
				statsMu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	close(workDone)
	<-supDone
	rep.Retries = cli.Retries()
	_ = cli.Close()
	if supErr != nil {
		return nil, supErr
	}

	// Every client has disconnected; drain the server so each session's
	// rollback path runs, then interrogate the wreckage.
	_ = sup.get().Close()
	for k, n := range inj.Counts() {
		rep.Faults[k] = n
	}

	// Oracle 1: no leaked locks. Locks must never outlive their sessions,
	// crashed or not — the paper's stuck-lock failure class (§4.3).
	rep.LeakedLocks = waitForZeroLocks(eng.LockManager(), 2*time.Second)
	if rep.LeakedLocks != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%d locks still held after all clients disconnected", rep.LeakedLocks))
	}

	// Oracle 2: the workload's own state invariants (the transfer workload
	// checks balance conservation). Its probe transactions take FOR UPDATE
	// locks, so this doubles as a leaked-exclusive-lock detector: a stuck
	// lock turns the probe into a timeout.
	observed, viols := wl.Check(eng)
	rep.Observed = observed
	rep.Violations = append(rep.Violations, viols...)

	// Oracle 3: the committed history is conflict-serializable. Aborted and
	// in-flight transactions are projected out first — under fault
	// injection, most of the raw history is failed attempts.
	items := hist.Items()
	for _, it := range items {
		if it.Kind == analyzer.OpCommit {
			rep.Committed++
		}
	}
	if cycle := analyzer.CheckCommitted(items); cycle != nil {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("committed history not serializable: cycle %v", cycle))
	}
	return rep, nil
}

// probeSum sums every balance under FOR UPDATE in a fresh transaction.
func probeSum(eng *engine.Engine) (int64, error) {
	txn := eng.Begin(engine.IsolationDefault)
	defer func() { _ = txn.Rollback() }()
	rows, err := txn.Select("accounts", storage.All{}, engine.ForUpdate)
	if err != nil {
		return 0, err
	}
	schema := eng.Schema("accounts")
	var sum int64
	for _, row := range rows {
		bal, _ := row.Get(schema, "bal").(int64)
		sum += bal
	}
	if err := txn.Commit(); err != nil {
		return 0, err
	}
	return sum, nil
}

// waitForZeroLocks polls the lock manager until it reports no held locks or
// the deadline passes, returning the final count. Sessions release locks on
// their way out, so a brief settle window is legitimate; a count that never
// reaches zero is a leak.
func waitForZeroLocks(lm *lockmgr.Manager, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		n := lm.HeldCount()
		if n == 0 || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func withAddr(cfg server.Config, addr string) server.Config {
	cfg.Addr = addr
	return cfg
}

// restart retries Start briefly: the dead listener's port can take a moment
// to become bindable again.
func restart(srv *server.Server) error {
	var err error
	for i := 0; i < 50; i++ {
		if err = srv.Start(); err == nil {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return err
}

// RunSeeds runs n consecutive seeds starting at first, returning the
// reports and the first failing report (nil if all passed).
func RunSeeds(first int64, n int, mk func(seed int64) Config) ([]*Report, *Report, error) {
	var reports []*Report
	var failed *Report
	for s := first; s < first+int64(n); s++ {
		rep, err := Run(mk(s))
		if err != nil {
			return reports, failed, err
		}
		reports = append(reports, rep)
		if failed == nil && rep.Failed() {
			failed = rep
		}
	}
	return reports, failed, nil
}
