package chaos

import (
	"fmt"
	"math/rand"

	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
	"adhoctx/internal/wire"
)

// Workload is a pluggable chaos workload: the schema it runs over, how the
// tables are seeded, what one client operation does, and what must hold of
// the surviving state. The harness supplies everything else — TCP serving,
// fault injection, crash/recovery supervision, and the workload-independent
// oracles (leaked locks, committed-history serializability, and in restart
// mode acked ⊆ recovered).
//
// A nil Config.Workload / RestartConfig.Workload means the built-in
// contended-transfer workload, unchanged from earlier revisions.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Tables are created on every engine the harness boots (including the
	// restart mode's cold verification engine).
	Tables []*storage.Schema
	// Seed populates a fresh database, inside one transaction the harness
	// commits. It runs once per in-process run, and only on the first boot
	// of a restart-mode data directory.
	Seed func(txn *engine.Txn) error
	// Op performs one client operation over the wire. rng is the worker's
	// private generator — derive every random choice from it so the
	// operation sequence is a pure function of the seed. Op runs under
	// RunTxn with blind connection-loss retries, so it must be safe to
	// re-execute: guard writes inside the transaction, don't accumulate
	// client-side state.
	Op func(rng *rand.Rand, txn *client.Txn) error
	// Check inspects the final state (recovered state, in restart mode) and
	// returns a one-line summary of what it observed plus any invariant
	// violations.
	Check func(eng *engine.Engine) (observed string, violations []string)
	// Replay, when non-empty, replaces the default replay command in
	// reports — callers whose workload isn't reachable from adhocchaos
	// flags point the report at their own command line.
	Replay string
	// OCC makes the harness begin every client transaction in optimistic
	// mode (BeginOpts.OCC): Op's reads must then use LockNone and rely on
	// commit-time validation instead of row locks.
	OCC bool
}

// transferWorkload is the harness's original workload: contended transfers
// between rows accounts under FOR UPDATE locks, conserving the total
// balance.
func transferWorkload(rows int) *Workload {
	return &Workload{
		Name: "transfer",
		Tables: []*storage.Schema{storage.NewSchema("accounts",
			storage.Column{Name: "bal", Type: storage.TInt},
		)},
		Seed: func(txn *engine.Txn) error {
			for i := 0; i < rows; i++ {
				if _, err := txn.Insert("accounts", map[string]storage.Value{"bal": InitialBalance}); err != nil {
					return err
				}
			}
			return nil
		},
		Op: func(rng *rand.Rand, txn *client.Txn) error {
			a := 1 + rng.Int63n(int64(rows))
			b := 1 + rng.Int63n(int64(rows))
			for b == a {
				b = 1 + rng.Int63n(int64(rows))
			}
			amt := 1 + rng.Int63n(5)
			return transfer(txn, a, b, amt)
		},
		Check: func(eng *engine.Engine) (string, []string) {
			sum, err := probeSum(eng)
			if err != nil {
				return "", []string{fmt.Sprintf("balance probe failed: %v", err)}
			}
			if want := int64(rows) * InitialBalance; sum != want {
				return fmt.Sprintf("sum=%d", sum), []string{
					fmt.Sprintf("balance sum %d, want %d (lost or duplicated writes)", sum, want)}
			}
			return fmt.Sprintf("sum=%d", sum), nil
		},
	}
}

// transferOCCWorkload is the same contended-transfer workload run as
// optimistic transactions: both account reads are plain snapshot reads (no
// FOR UPDATE — under OCC the engine takes no row locks on reads at all), the
// increments buffer locally, and commit-time backward validation plus the
// client's CodeOCCConflict retry loop replace the locks. The oracle set is
// unchanged: whatever mode, committed histories must serialize and the total
// balance must be conserved.
func transferOCCWorkload(rows int) *Workload {
	wl := transferWorkload(rows)
	wl.Name = "transfer-occ"
	wl.OCC = true
	wl.Op = func(rng *rand.Rand, txn *client.Txn) error {
		a := 1 + rng.Int63n(int64(rows))
		b := 1 + rng.Int63n(int64(rows))
		for b == a {
			b = 1 + rng.Int63n(int64(rows))
		}
		amt := 1 + rng.Int63n(5)
		return transferOCC(txn, a, b, amt)
	}
	return wl
}

// transferOCC moves amt from a to b on snapshot reads: the reads enter the
// transaction's read set, so a concurrent commit to either row aborts this
// one at validation instead of blocking it at a lock.
func transferOCC(txn *client.Txn, a, b, amt int64) error {
	for _, id := range []int64{a, b} {
		rows, err := txn.Select("accounts", storage.ByPK(id), wire.LockNone)
		if err != nil {
			return err
		}
		if len(rows.Rows) != 1 {
			return fmt.Errorf("chaos: account %d: got %d rows", id, len(rows.Rows))
		}
	}
	if _, err := txn.Update("accounts", storage.ByPK(a),
		map[string]storage.Value{"bal": storage.Inc(-amt)}); err != nil {
		return err
	}
	_, err := txn.Update("accounts", storage.ByPK(b),
		map[string]storage.Value{"bal": storage.Inc(amt)})
	return err
}

// transfer moves amt from account a to b under FOR UPDATE locks, reading
// both rows first — the paper's canonical read-modify-write critical
// section, with the lock order left to the caller's rng.
func transfer(txn *client.Txn, a, b, amt int64) error {
	for _, id := range []int64{a, b} {
		rows, err := txn.Select("accounts", storage.ByPK(id), wire.LockForUpdate)
		if err != nil {
			return err
		}
		if len(rows.Rows) != 1 {
			return fmt.Errorf("chaos: account %d: got %d rows", id, len(rows.Rows))
		}
	}
	if _, err := txn.Update("accounts", storage.ByPK(a),
		map[string]storage.Value{"bal": storage.Inc(-amt)}); err != nil {
		return err
	}
	_, err := txn.Update("accounts", storage.ByPK(b),
		map[string]storage.Value{"bal": storage.Inc(amt)})
	return err
}
