package chaos

import (
	"strings"
	"testing"

	"adhoctx/internal/engine"
	"adhoctx/internal/faults"
	"adhoctx/internal/obs"
)

// shortConfig is a CI-sized run: full fault schedule, one crash cycle.
func shortConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Clients = 4
	cfg.Ops = 20
	cfg.Rows = 6
	return cfg
}

// TestChaosSeedsPass sweeps several seeds of the full fault schedule and
// requires every oracle to hold on each. This is the in-tree slice of the
// acceptance run; cmd/adhocchaos covers ≥20 seeds.
func TestChaosSeedsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	reports, failed, err := RunSeeds(1, 5, shortConfig)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if len(reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(reports))
	}
	if failed != nil {
		t.Fatalf("seed %d violated oracles: %v\nreplay: %s",
			failed.Seed, failed.Violations, failed.Replay)
	}
	// The sweep must actually have exercised the fault paths, or the pass
	// is vacuous.
	var totalFaults, totalCrashes int64
	for _, r := range reports {
		for _, n := range r.Faults {
			totalFaults += n
		}
		totalCrashes += int64(len(r.CrashPoints))
	}
	if totalFaults == 0 {
		t.Fatal("no network faults injected across 5 seeds")
	}
	if totalCrashes == 0 {
		t.Fatal("no crash points fired across 5 seeds")
	}
}

// TestCrashRecoveryMidCommit is the acceptance criterion in isolation: a
// crash-point kill during COMMIT followed by restart must recover the WAL,
// and the pooled clients must reconnect and complete every transfer without
// manual intervention. Network faults are off so any failed transfer is a
// recovery bug, not retry exhaustion.
func TestCrashRecoveryMidCommit(t *testing.T) {
	cfg := Config{
		Seed:    7,
		Clients: 4,
		Ops:     25,
		Rows:    6,
		Crashes: 2,
		Plan:    faults.Plan{}, // crashes only
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Log(rep.Summary())
	if rep.Failed() {
		t.Fatalf("violations: %v\nreplay: %s", rep.Violations, rep.Replay)
	}
	if len(rep.CrashPoints) == 0 {
		t.Fatal("no crash point fired; the test exercised nothing")
	}
	if rep.Recoveries != len(rep.CrashPoints) {
		t.Fatalf("recoveries = %d, crashes = %d", rep.Recoveries, len(rep.CrashPoints))
	}
	if rep.TransferErrs != 0 {
		t.Fatalf("%d transfers failed despite no network faults: clients did not ride through recovery", rep.TransferErrs)
	}
	if rep.Transfers != cfg.Clients*cfg.Ops {
		t.Fatalf("completed %d transfers, want %d", rep.Transfers, cfg.Clients*cfg.Ops)
	}
}

// TestSameSeedSameFaultSchedule pins replayability at the harness level: a
// rerun of a seed injects the same per-kind fault counts only when the
// scheduler cooperates, but the crash points — driven entirely by the
// supervisor's seeded rng — must be identical.
func TestSameSeedSameFaultSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos rerun skipped in -short")
	}
	cfg := shortConfig(3)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CrashPoints) != len(b.CrashPoints) {
		t.Fatalf("crash counts differ across reruns: %v vs %v", a.CrashPoints, b.CrashPoints)
	}
	for i := range a.CrashPoints {
		if a.CrashPoints[i] != b.CrashPoints[i] {
			t.Fatalf("crash schedule differs: %v vs %v", a.CrashPoints, b.CrashPoints)
		}
	}
	if a.Failed() || b.Failed() {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
}

// TestReplayCommandRoundTrips: the printed replay line carries every
// workload parameter of the failing config.
func TestReplayCommandRoundTrips(t *testing.T) {
	cmd := ReplayCommand(Config{Seed: 42, Clients: 3, Ops: 9, Rows: 5, Crashes: 2})
	for _, want := range []string{"-seed 42", "-clients 3", "-ops 9", "-rows 5", "-crashes 2", "cmd/adhocchaos"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("replay command %q missing %q", cmd, want)
		}
	}
}

// TestObsWiring: fault counters land on the provided registry.
func TestObsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := shortConfig(11)
	cfg.Crashes = 0
	cfg.Obs = reg
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	var onReg int64
	for _, k := range faults.Kinds {
		onReg += reg.Counter(`faults_injected_total{kind="` + k.String() + `"}`).Value()
	}
	var inReport int64
	for _, n := range rep.Faults {
		inReport += n
	}
	if onReg != inReport {
		t.Fatalf("registry counts %d faults, report %d", onReg, inReport)
	}
}

// shortGroupConfig is the CI-sized slice of the PR-4 configuration: group
// commit over a real (simulated) flush bottleneck, sharded lock manager,
// wal crash points in the rotation.
func shortGroupConfig(seed int64) Config {
	cfg := GroupCommitConfig(seed)
	cfg.Clients = 4
	cfg.Ops = 20
	cfg.Rows = 6
	return cfg
}

// TestChaosGroupCommitSeedsPass sweeps the group-commit + sharded-lockmgr
// configuration: every oracle must hold while batches are killed mid-flush
// by the wal/groupcommit crash points.
func TestChaosGroupCommitSeedsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	reports, failed, err := RunSeeds(1, 5, shortGroupConfig)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if failed != nil {
		t.Fatalf("seed %d violated oracles: %v\nreplay: %s",
			failed.Seed, failed.Violations, failed.Replay)
	}
	var crashes int
	for _, r := range reports {
		crashes += len(r.CrashPoints)
	}
	if crashes == 0 {
		t.Fatal("no crash points fired across the group-commit sweep")
	}
}

// TestReplayCommandCarriesEngineConfig: the replay line reproduces the
// group-commit configuration, not just the workload shape.
func TestReplayCommandCarriesEngineConfig(t *testing.T) {
	cmd := ReplayCommand(GroupCommitConfig(9))
	for _, want := range []string{"-groupcommit", "-fsync 500µs"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("replay command %q missing %q", cmd, want)
		}
	}
}

// shortOCCConfig is the CI-sized optimistic run: full fault schedule, one
// crash cycle, transfers as engine-OCC transactions.
func shortOCCConfig(seed int64) Config {
	cfg := OCCConfig(seed)
	cfg.Clients = 4
	cfg.Ops = 15
	cfg.Rows = 6
	return cfg
}

// TestChaosOCCSeedsPass is the PR-10 acceptance sweep: 20 seeds of the
// transfer workload run as optimistic transactions under the full fault
// schedule plus crash points — including the engine's OCC validate/commit
// points, which kill the process inside the visible-but-not-durable commit
// window. Every seed must satisfy the same oracles as the pessimistic
// sweep: the committed projection of the history is conflict-serializable,
// the total balance is conserved, and no locks leak.
func TestChaosOCCSeedsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	reports, failed, err := RunSeeds(1, 20, shortOCCConfig)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if failed != nil {
		t.Fatalf("seed %d violated oracles: %v\nreplay: %s",
			failed.Seed, failed.Violations, failed.Replay)
	}
	var totalFaults, totalCrashes, occCrashes int64
	for _, r := range reports {
		if r.Workload != "transfer-occ" {
			t.Fatalf("seed %d ran workload %q, want transfer-occ", r.Seed, r.Workload)
		}
		for _, n := range r.Faults {
			totalFaults += n
		}
		totalCrashes += int64(len(r.CrashPoints))
		for _, p := range r.CrashPoints {
			if p == engine.CrashPointOCCValidate || p == engine.CrashPointOCCCommit {
				occCrashes++
			}
		}
	}
	if totalFaults == 0 {
		t.Fatal("no network faults injected across the OCC sweep")
	}
	if totalCrashes == 0 {
		t.Fatal("no crash points fired across the OCC sweep")
	}
	// Across 20 seeds with the OCC points in a rotation of four, at least one
	// crash must have landed on an OCC point, or the new window went untested.
	if occCrashes == 0 {
		t.Fatal("no OCC validate/commit crash points fired across 20 seeds")
	}
}

// TestReplayCommandCarriesOCC pins the -occ flag into the replay line.
func TestReplayCommandCarriesOCC(t *testing.T) {
	cmd := ReplayCommand(OCCConfig(7))
	if !strings.Contains(cmd, "-occ") {
		t.Fatalf("replay command %q missing -occ", cmd)
	}
}
