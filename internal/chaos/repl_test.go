package chaos

import (
	"testing"
	"time"
)

// TestReplRunCleanSeed: no leader kill, no network faults — the replicated
// tier must pass every oracle and never redirect.
func TestReplRunCleanSeed(t *testing.T) {
	cfg := ReplConfig{Seed: 1, KillLeader: false}.withDefaults()
	rep, err := ReplRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean seed violated oracles:\n%s", rep.Summary())
	}
	if rep.Transfers == 0 || rep.Reads == 0 {
		t.Fatalf("workload did nothing: %+v", rep)
	}
	if rep.KilledPartition != -1 || rep.CrashPoint != "" {
		t.Fatalf("leader died without a kill armed: %+v", rep)
	}
}

// TestReplFailoverSweep is the acceptance sweep: seeded leader kills with
// network faults on, every seed must satisfy acked⊆promoted, per-partition
// serializability, balance conservation, and zero leaked locks.
func TestReplFailoverSweep(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	start := time.Now()
	reports, failed, err := ReplRunSeeds(1, seeds, DefaultReplConfig)
	if err != nil {
		t.Fatal(err)
	}
	if failed != nil {
		t.Fatalf("seed %d violated oracles:\n%s", failed.Seed, failed.Summary())
	}
	kills, acked := 0, 0
	for _, rep := range reports {
		if rep.CrashPoint != "" {
			kills++
		}
		acked += rep.AckedMarkers
	}
	t.Logf("%d seeds, %d leader kills, %d acked markers, %s",
		seeds, kills, acked, time.Since(start).Round(time.Millisecond))
	if kills == 0 {
		t.Fatal("no seed ever killed a leader; the failover path went unexercised")
	}
	if acked == 0 {
		t.Fatal("no acknowledged transfers; the marker oracle is vacuous")
	}
}
