package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"adhoctx/internal/analyzer"
	"adhoctx/internal/client"
	"adhoctx/internal/disk"
	"adhoctx/internal/engine"
	"adhoctx/internal/faults"
	"adhoctx/internal/server"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

// RestartConfig parameterizes a restart-mode chaos run: the transfer
// workload over TCP, but on an engine whose WAL lives in a real data
// directory (internal/disk), and with a supervisor that on every crash
// throws away the ENTIRE serving stack — engine, WAL image, lock manager,
// server — and re-opens the directory from scratch, exactly like a process
// restart. The in-process mode (Run) can only lose volatile state; this
// mode proves the durable state alone carries every acknowledged commit.
type RestartConfig struct {
	// Seed drives the workload, fault schedule, and crash timing.
	Seed int64
	// Clients is the number of concurrent transfer workers (default 4).
	Clients int
	// Ops is the number of transfers each worker attempts (default 20).
	Ops int
	// Rows is the number of accounts (default 6; at least 2).
	Rows int
	// Restarts is how many crash/re-open cycles to arm (default 1).
	Restarts int
	// Plan is the network fault schedule (zero = no network faults).
	Plan faults.Plan
	// LockTimeout bounds engine lock waits (default 2s).
	LockTimeout time.Duration
	// Dir is the data directory. Required: the caller owns its lifetime
	// (cmd/adhocchaos uses a fresh temp dir per seed).
	Dir string
	// SegmentSize is the WAL segment rotation threshold (default 16 KiB,
	// small enough that runs actually rotate).
	SegmentSize int64
	// Workload is the schema + operations + state oracle to run. Nil means
	// the built-in contended-transfer workload over Rows accounts. The
	// harness adds its own txlog marker table on top for the
	// acked ⊆ recovered oracle.
	Workload *Workload
}

func (c RestartConfig) withDefaults() RestartConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Ops <= 0 {
		c.Ops = 20
	}
	if c.Rows < 2 {
		c.Rows = 6
	}
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 2 * time.Second
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 16 << 10
	}
	return c
}

// RestartReport is the outcome of one restart-mode seed.
type RestartReport struct {
	Seed int64
	// Workload names the workload that ran.
	Workload string
	// Transfers and TransferErrs count worker-level outcomes; errors are
	// workers that exhausted retries, legitimate under faults.
	Transfers, TransferErrs int
	// AckedMarkers is how many acknowledged transfers the marker oracle
	// tracked (each must exist in the recovered state).
	AckedMarkers int
	// Committed counts committed transactions across all eras' histories.
	Committed int
	// Retries is the clients' total backoff-retry count.
	Retries int64
	// CrashPoints are the crash points that fired, in firing order.
	CrashPoints []string
	// Boots is how many times the data directory was opened (1 + restarts
	// + the final cold verification open).
	Boots int
	// TruncatedBytes totals the torn-tail bytes recovery cut across boots.
	TruncatedBytes int64
	// CheckpointLSN is the covered LSN of the newest checkpoint at the end.
	CheckpointLSN uint64
	// Observed is the workload oracle's one-line view of the recovered
	// state (the transfer workload reports "sum=<total balance>").
	Observed string
	// LeakedLocks is the last era's lock count after all clients left.
	LeakedLocks int
	// Violations lists every oracle violation; empty means the seed passed.
	Violations []string
	// Replay is the command line that reproduces this run.
	Replay string
	// Elapsed is the wall time of the workload phase.
	Elapsed time.Duration
}

// Failed reports whether any oracle was violated.
func (r *RestartReport) Failed() bool { return len(r.Violations) > 0 }

// Summary renders the report as one line per fact.
func (r *RestartReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d transfers (%d failed), %d acked markers, %d committed txns, %d retries, %s\n",
		r.Seed, r.Transfers, r.TransferErrs, r.AckedMarkers, r.Committed, r.Retries,
		r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  boots=%d crashes=%v torn-bytes=%d checkpoint-lsn=%d\n",
		r.Boots, r.CrashPoints, r.TruncatedBytes, r.CheckpointLSN)
	if r.Failed() {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
		fmt.Fprintf(&b, "  replay: %s\n", r.Replay)
	} else {
		fmt.Fprintf(&b, "  oracles: acked ⊆ recovered, per-era serializable, %s, leaked locks=0\n", r.Observed)
	}
	return b.String()
}

// RestartReplayCommand renders the command line that reruns cfg (with a
// fresh temp dir; the directory contents are derived from the seed).
func RestartReplayCommand(cfg RestartConfig) string {
	cfg = cfg.withDefaults()
	return fmt.Sprintf("go run ./cmd/adhocchaos -restart -seed %d -seeds 1 -clients %d -ops %d -rows %d -crashes %d",
		cfg.Seed, cfg.Clients, cfg.Ops, cfg.Rows, cfg.Restarts)
}

// restartEra is one process lifetime: an engine over a disk store, served
// on TCP, with its own history capture (transaction IDs restart with the
// engine, so histories must never be merged across eras).
type restartEra struct {
	eng   *engine.Engine
	store *disk.Store
	srv   *server.Server
	hist  *analyzer.History
	rec   *disk.Recovered
}

// bootRestartEra opens the data directory, recovers, checkpoints the
// recovered state, and serves it. seedRows is done only when the directory
// is fresh (first boot).
func bootRestartEra(cfg RestartConfig, wl *Workload, plan *sim.CrashPlan, inj *faults.Injector, addr string) (*restartEra, error) {
	store, rec, err := disk.Open(cfg.Dir, disk.Options{SegmentSize: cfg.SegmentSize})
	if err != nil {
		return nil, fmt.Errorf("chaos: open data dir: %w", err)
	}
	eng := engine.New(engine.Config{
		Dialect:     engine.MySQL,
		LockTimeout: cfg.LockTimeout,
		GroupCommit: true,
		WALDevice:   store,
		Crash:       plan,
	})
	createRestartTables(eng, wl)
	if rec.Empty() {
		seedTxn := eng.Begin(engine.IsolationDefault)
		if err := wl.Seed(seedTxn); err != nil {
			return nil, fmt.Errorf("chaos: seed: %w", err)
		}
		if err := seedTxn.Commit(); err != nil {
			return nil, fmt.Errorf("chaos: seed commit: %w", err)
		}
	} else {
		if err := eng.LoadRecovered(rec.Checkpoint, rec.Tail, rec.LastLSN); err != nil {
			return nil, fmt.Errorf("chaos: load recovered: %w", err)
		}
		// Checkpoint-on-boot: fold the replayed tail into a fresh
		// checkpoint so segments get pruned and the next recovery is
		// shorter — and so checkpointing itself is exercised under chaos.
		snap, lsn, err := eng.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("chaos: boot snapshot: %w", err)
		}
		if err := store.Checkpoint(snap, lsn); err != nil {
			return nil, fmt.Errorf("chaos: boot checkpoint: %w", err)
		}
	}

	hist := analyzer.NewHistory()
	eng.SetTracer(hist)

	srvCfg := server.Config{
		Addr:        addr,
		MaxSessions: cfg.Clients + 4,
		IdleTimeout: 2 * time.Second,
		WrapConn:    inj.WrapConn,
		Crash:       plan,
	}
	srv := server.New(eng, nil, srvCfg)
	if err := restart(srv); err != nil {
		_ = store.Close()
		return nil, fmt.Errorf("chaos: serve: %w", err)
	}
	return &restartEra{eng: eng, store: store, srv: srv, hist: hist, rec: rec}, nil
}

// kill tears the era down the way a process dies: server drained, engine
// halted, store closed with staged-unsynced bytes DISCARDED. Nothing is
// flushed on the way out — durability must come from the syncs that already
// happened.
func (era *restartEra) kill() {
	_ = era.srv.Close()
	era.eng.Crash()
	_ = era.store.Close()
}

// RunRestart executes one restart-mode seed end to end and runs the
// durability oracles, including a final cold re-open of the data directory
// with no server at all. The returned error is reserved for harness
// breakage; oracle violations land in the report.
func RunRestart(cfg RestartConfig) (*RestartReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: RestartConfig.Dir is required")
	}
	wl := cfg.Workload
	if wl == nil {
		wl = transferWorkload(cfg.Rows)
	}
	rep := &RestartReport{Seed: cfg.Seed, Workload: wl.Name, Replay: RestartReplayCommand(cfg)}
	if wl.Replay != "" {
		rep.Replay = wl.Replay
	}

	plan := &sim.CrashPlan{}
	inj := faults.New(cfg.Seed, cfg.Plan)

	first, err := bootRestartEra(cfg, wl, plan, inj, "")
	if err != nil {
		return nil, err
	}
	rep.Boots++
	rep.TruncatedBytes += first.rec.TruncatedTail
	addr := first.srv.Addr().String()

	var (
		eraMu sync.Mutex
		eras  = []*restartEra{first}
	)
	curEra := func() *restartEra {
		eraMu.Lock()
		defer eraMu.Unlock()
		return eras[len(eras)-1]
	}

	// Crash rotation: server commit points and WAL group-commit flush
	// points. Armed only after the first era is seeded and serving.
	supRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	points := []string{
		server.CrashPointCommitBefore, server.CrashPointCommitAfter,
		wal.CrashPointBeforeFsync, wal.CrashPointAfterFsync,
	}
	armNext := func() {
		plan.Arm(points[supRng.Intn(len(points))], 2+supRng.Intn(6))
	}
	armNext()

	// Supervisor: on crash, kill the whole era and boot a new one from the
	// directory on the same address.
	workDone := make(chan struct{})
	supDone := make(chan struct{})
	var supErr error
	go func() {
		defer close(supDone)
		crashed := 0
		for {
			cur := curEra()
			select {
			case <-workDone:
				return
			case <-cur.srv.Crashed():
				rep.CrashPoints = append(rep.CrashPoints, cur.srv.CrashPoint())
				cur.kill()
				next, err := bootRestartEra(cfg, wl, plan, inj, addr)
				if err != nil {
					supErr = err
					return
				}
				rep.Boots++
				rep.TruncatedBytes += next.rec.TruncatedTail
				eraMu.Lock()
				eras = append(eras, next)
				eraMu.Unlock()
				crashed++
				if crashed < cfg.Restarts {
					armNext()
				}
			}
		}
	}()

	cli := client.New(client.Config{
		Addr:           addr,
		PoolSize:       cfg.Clients,
		MaxRetries:     60,
		BackoffBase:    500 * time.Microsecond,
		DialTimeout:    time.Second,
		RequestTimeout: 2 * cfg.LockTimeout,
		RetryConnLost:  true,
		Dial:           inj.Dial,
	})

	// Workload: contended transfers, each carrying a fresh marker row per
	// attempt. Only the attempt whose COMMIT was acknowledged joins the
	// oracle set — an ambiguous (crashed mid-commit, retried) attempt may
	// or may not have survived, and either outcome is legal.
	start := time.Now()
	var (
		wg      sync.WaitGroup
		statsMu sync.Mutex
		acked   []int64
	)
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(worker int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + worker))
			markerCursor := markerBase + worker*1_000_000
			for i := 0; i < cfg.Ops; i++ {
				var marker int64
				err := cli.RunTxn(engine.IsolationDefault, func(txn *client.Txn) error {
					marker = markerCursor
					markerCursor++
					if _, err := txn.Insert("txlog", map[string]storage.Value{
						storage.PKColumn: marker, "worker": worker,
					}); err != nil {
						return err
					}
					return wl.Op(rng, txn)
				})
				statsMu.Lock()
				if err != nil {
					rep.TransferErrs++
				} else {
					rep.Transfers++
					acked = append(acked, marker)
				}
				statsMu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	close(workDone)
	<-supDone
	rep.Retries = cli.Retries()
	_ = cli.Close()
	if supErr != nil {
		return nil, supErr
	}
	rep.AckedMarkers = len(acked)

	// Drain the last era and check its locks before killing it.
	last := curEra()
	_ = last.srv.Close()
	rep.LeakedLocks = waitForZeroLocks(last.eng.LockManager(), 2*time.Second)
	if rep.LeakedLocks != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%d locks still held after all clients disconnected", rep.LeakedLocks))
	}
	_ = last.store.Close()

	// Oracle: per-era committed histories are conflict-serializable.
	// Transaction IDs restart with each engine, so each era is checked on
	// its own — exactly the guarantee a restarting database gives.
	eraMu.Lock()
	allEras := append([]*restartEra(nil), eras...)
	eraMu.Unlock()
	for i, era := range allEras {
		items := era.hist.Items()
		for _, it := range items {
			if it.Kind == analyzer.OpCommit {
				rep.Committed++
			}
		}
		if cycle := analyzer.CheckCommitted(items); cycle != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("era %d: committed history not serializable: cycle %v", i, cycle))
		}
	}

	// Final cold verification: re-open the directory with no server, no
	// workload, no crash plan — only what is on disk.
	cold, rec, err := disk.Open(cfg.Dir, disk.Options{SegmentSize: cfg.SegmentSize})
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("cold re-open failed: %v", err))
		return rep, nil
	}
	defer cold.Close()
	rep.Boots++
	rep.TruncatedBytes += rec.TruncatedTail
	rep.CheckpointLSN = rec.CheckpointLSN
	verify := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: cfg.LockTimeout})
	createRestartTables(verify, wl)
	if err := verify.LoadRecovered(rec.Checkpoint, rec.Tail, rec.LastLSN); err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("cold recovery replay failed: %v", err))
		return rep, nil
	}

	// Oracle: acked ⊆ recovered. Every acknowledged transfer's marker row
	// must exist in the state rebuilt purely from the files.
	for _, m := range acked {
		row, err := probeRow(verify, "txlog", m)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("marker probe %d: %v", m, err))
			break
		}
		if row == nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("acknowledged commit lost across restart: marker %d missing from recovered state", m))
		}
	}

	// Oracle: the workload's state invariants hold in the recovered state
	// (the transfer workload checks balance conservation).
	observed, viols := wl.Check(verify)
	rep.Observed = observed
	rep.Violations = append(rep.Violations, viols...)
	return rep, nil
}

// createRestartTables creates the workload's tables plus the harness's own
// txlog marker table on an engine about to serve (or verify) a restart run.
func createRestartTables(eng *engine.Engine, wl *Workload) {
	for _, sch := range wl.Tables {
		eng.CreateTable(sch)
	}
	eng.CreateTable(storage.NewSchema("txlog",
		storage.Column{Name: "worker", Type: storage.TInt},
	))
}

// RunRestartSeeds runs n consecutive restart-mode seeds starting at first,
// returning the reports and the first failing report (nil if all passed).
// mk must give every seed its own data directory.
func RunRestartSeeds(first int64, n int, mk func(seed int64) RestartConfig) ([]*RestartReport, *RestartReport, error) {
	var reports []*RestartReport
	var failed *RestartReport
	for s := first; s < first+int64(n); s++ {
		rep, err := RunRestart(mk(s))
		if err != nil {
			return reports, failed, err
		}
		reports = append(reports, rep)
		if failed == nil && rep.Failed() {
			failed = rep
		}
	}
	return reports, failed, nil
}
