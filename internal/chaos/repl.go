package chaos

// The replicated-tier chaos suite: P partitions, each served by one
// semi-sync leader and F followers, fronted by the shard-aware router,
// with a seed-driven supervisor that kills one partition's leader
// mid-workload and promotes the follower with the highest applied LSN.
//
// The load-bearing oracle is acked ⊆ promoted: every transfer the router
// acknowledged must be present on the partition's post-failover leader.
// The argument that highest-applied-LSN promotion preserves this: WAL LSNs
// are dense and followers apply strictly by prefix, so every follower's
// state is a prefix of the dead leader's log and follower states are
// totally ordered by applied LSN. A semi-sync-acked batch at LSN L is
// durable on at least one follower, whose prefix therefore extends to ≥ L;
// the maximum-LSN follower's prefix extends at least as far, so it contains
// every acknowledged batch. Promotion requires AckTimeout=0 (strict
// semi-sync): a degrade-to-async window would let an ack race the ship and
// break the containment.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adhoctx/internal/analyzer"
	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/faults"
	"adhoctx/internal/obs"
	"adhoctx/internal/proxy"
	"adhoctx/internal/repl"
	"adhoctx/internal/server"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
	"adhoctx/internal/wire"
)

// markerBase is where the txlog marker primary-key space starts; account
// primary keys are assigned from 1 upward and never reach it.
const markerBase int64 = 1 << 40

// ReplConfig parameterizes one replicated chaos run.
type ReplConfig struct {
	// Seed drives the workload, the fault schedule, and the kill timing.
	Seed int64
	// Partitions is the partition count (default 2).
	Partitions int
	// Followers is the follower count per partition (default 2).
	Followers int
	// Clients is the number of concurrent workers (default 4).
	Clients int
	// Ops is the number of operations per worker (default 30); every
	// fourth op is a bounded-staleness read, the rest are transfers.
	Ops int
	// Rows is the number of accounts per partition (default 4, min 2).
	Rows int
	// KillLeader arms a whole-node kill on one seed-chosen partition's
	// leader (default true via DefaultReplConfig).
	KillLeader bool
	// Plan is the network fault schedule applied to client↔server traffic.
	Plan faults.Plan
	// LockTimeout bounds engine lock waits (default 2s).
	LockTimeout time.Duration
	// GroupCommit enables WAL group commit on every node.
	GroupCommit bool
	// Fsync is the simulated WAL flush latency.
	Fsync time.Duration
	// Obs, when non-nil, receives replication and server metrics.
	Obs *obs.Registry
}

func (c ReplConfig) withDefaults() ReplConfig {
	if c.Partitions <= 0 {
		c.Partitions = 2
	}
	if c.Followers <= 0 {
		c.Followers = 2
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Ops <= 0 {
		c.Ops = 30
	}
	if c.Rows < 2 {
		c.Rows = 4
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 2 * time.Second
	}
	return c
}

// DefaultReplConfig is the smoke-sweep configuration: leader kill on, mild
// network faults.
func DefaultReplConfig(seed int64) ReplConfig {
	return ReplConfig{
		Seed:       seed,
		KillLeader: true,
		Plan: faults.Plan{
			DropPer10k:       20,
			TruncatePer10k:   20,
			WriteDelayPer10k: 100,
			ReadDelayPer10k:  100,
			MaxDelay:         time.Millisecond,
		},
	}.withDefaults()
}

// ReplReport is the outcome of one replicated-tier seed.
type ReplReport struct {
	Seed                    int64
	Transfers, TransferErrs int
	Reads, ReadErrs         int
	// AckedMarkers is how many acknowledged transfers the marker oracle
	// checked for survival.
	AckedMarkers int
	// KilledPartition is the partition whose leader was killed (-1 none).
	KilledPartition int
	// CrashPoint is the crash point that killed it ("" if none fired).
	CrashPoint string
	// PromotedLSN is the applied LSN of the promoted follower at promotion.
	PromotedLSN uint64
	// Redirects and LeaderReadFallbacks are the router's routing counters.
	Redirects, LeaderReadFallbacks int64
	// Violations lists oracle violations; empty means the seed passed.
	Violations []string
	// Replay reruns this seed.
	Replay  string
	Elapsed time.Duration
}

// Failed reports whether any oracle was violated.
func (r *ReplReport) Failed() bool { return len(r.Violations) > 0 }

// Summary renders the report.
func (r *ReplReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d transfers (%d failed), %d reads (%d failed), %d acked markers, %s\n",
		r.Seed, r.Transfers, r.TransferErrs, r.Reads, r.ReadErrs, r.AckedMarkers, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  failover: partition=%d point=%q promotedLSN=%d; router: redirects=%d fallbacks=%d\n",
		r.KilledPartition, r.CrashPoint, r.PromotedLSN, r.Redirects, r.LeaderReadFallbacks)
	if r.Failed() {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
		fmt.Fprintf(&b, "  replay: %s\n", r.Replay)
	} else {
		fmt.Fprintf(&b, "  oracles: acked⊆promoted, per-partition serializable, balances conserved, zero leaked locks\n")
	}
	return b.String()
}

// ReplReplayCommand renders the command line that reruns cfg.
func ReplReplayCommand(cfg ReplConfig) string {
	cfg = cfg.withDefaults()
	return fmt.Sprintf("go run ./cmd/adhocrepl -chaos -seed %d -seeds 1 -partitions %d -nodes %d -clients %d -ops %d",
		cfg.Seed, cfg.Partitions, 1+cfg.Followers, cfg.Clients, cfg.Ops)
}

// replNode is one serving node: an engine, its wire server, and its
// replication role handles.
type replNode struct {
	eng      *engine.Engine
	srv      *server.Server
	plan     *sim.CrashPlan
	writable atomic.Bool
	hist     *analyzer.History // non-nil once this node's era is traced

	mu  sync.Mutex
	led *repl.Leader
	fol *repl.Follower
}

func (n *replNode) clientAddr() string { return n.srv.Addr().String() }

// replPartition is one partition's topology, shared by the servers'
// LeaderHint closures and the failover supervisor.
type replPartition struct {
	idx uint32

	mu        sync.Mutex
	leader    *replNode
	followers []*replNode
}

func (p *replPartition) leaderAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.leader == nil {
		return ""
	}
	return p.leader.clientAddr()
}

// accountPKs assigns n account primary keys owned by partition p: the
// routing hash decides ownership, so keys are found by scanning upward.
func accountPKs(p, parts uint32, n int) []int64 {
	out := make([]int64, 0, n)
	for pk := int64(1); len(out) < n; pk++ {
		if wire.PartitionOf(pk, parts) == p {
			out = append(out, pk)
		}
	}
	return out
}

// newReplEngine builds one node's engine with the run's schema.
func newReplEngine(cfg ReplConfig, plan *sim.CrashPlan) *engine.Engine {
	eng := engine.New(engine.Config{
		Dialect:     engine.MySQL,
		LockTimeout: cfg.LockTimeout,
		WALFsync:    sim.Latency{Fsync: cfg.Fsync},
		GroupCommit: cfg.GroupCommit,
		Crash:       plan,
	})
	eng.CreateTable(storage.NewSchema("accounts",
		storage.Column{Name: "bal", Type: storage.TInt},
	))
	eng.CreateTable(storage.NewSchema("txlog",
		storage.Column{Name: "worker", Type: storage.TInt},
	))
	return eng
}

// ReplRun executes one replicated-tier seed end to end. The returned error
// is reserved for harness breakage; oracle violations land in the report.
func ReplRun(cfg ReplConfig) (*ReplReport, error) {
	cfg = cfg.withDefaults()
	rep := &ReplReport{Seed: cfg.Seed, KilledPartition: -1, Replay: ReplReplayCommand(cfg)}
	parts := uint32(cfg.Partitions)

	inj := faults.New(cfg.Seed, cfg.Plan)
	if cfg.Obs != nil {
		inj.WireObs(cfg.Obs)
	}
	supRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	victim := -1
	if cfg.KillLeader {
		victim = supRng.Intn(cfg.Partitions)
	}

	topo := make([]*replPartition, cfg.Partitions)
	var allNodes []*replNode
	accounts := make([][]int64, cfg.Partitions)

	newNode := func(p *replPartition, leader bool) (*replNode, error) {
		plan := &sim.CrashPlan{}
		n := &replNode{plan: plan, eng: newReplEngine(cfg, plan)}
		n.writable.Store(leader)
		n.srv = server.New(n.eng, nil, server.Config{
			MaxSessions:    cfg.Clients*2 + 4,
			IdleTimeout:    2 * time.Second,
			WrapConn:       inj.WrapConn,
			Crash:          plan,
			Writable:       n.writable.Load,
			LeaderHint:     p.leaderAddr,
			PartitionIndex: p.idx,
			PartitionCount: parts,
			AppliedLSN:     n.eng.AppliedLSN,
		})
		if cfg.Obs != nil {
			n.srv.WireObs(cfg.Obs)
		}
		if err := n.srv.Start(); err != nil {
			return nil, fmt.Errorf("chaos: repl node listen: %w", err)
		}
		allNodes = append(allNodes, n)
		return n, nil
	}

	// Build every partition: seed the leader, start its replication
	// listener, then bring followers through catch-up.
	for pi := 0; pi < cfg.Partitions; pi++ {
		p := &replPartition{idx: uint32(pi)}
		topo[pi] = p
		ldr, err := newNode(p, true)
		if err != nil {
			return nil, err
		}
		p.leader = ldr

		accounts[pi] = accountPKs(p.idx, parts, cfg.Rows)
		seedTxn := ldr.eng.Begin(engine.IsolationDefault)
		for _, pk := range accounts[pi] {
			if _, err := seedTxn.Insert("accounts", map[string]storage.Value{
				storage.PKColumn: pk, "bal": InitialBalance,
			}); err != nil {
				return nil, fmt.Errorf("chaos: repl seed: %w", err)
			}
		}
		if err := seedTxn.Commit(); err != nil {
			return nil, fmt.Errorf("chaos: repl seed commit: %w", err)
		}
		ldr.hist = analyzer.NewHistory()
		ldr.eng.SetTracer(ldr.hist)

		// Strict semi-sync: AckTimeout 0, so an ack always implies a
		// follower holds the batch — the promotion oracle's premise.
		led := repl.NewLeader(ldr.eng, repl.LeaderConfig{
			Addr:      "127.0.0.1:0",
			Partition: p.idx,
			Epoch:     1,
			Quorum:    repl.SemiSync,
			Replicas:  1 + cfg.Followers,
			Obs:       cfg.Obs,
		})
		if err := led.Start(); err != nil {
			return nil, fmt.Errorf("chaos: repl leader: %w", err)
		}
		ldr.led = led

		seededLSN := ldr.eng.AppliedLSN()
		for f := 0; f < cfg.Followers; f++ {
			fn, err := newNode(p, false)
			if err != nil {
				return nil, err
			}
			fn.fol = repl.NewFollower(fn.eng, repl.FollowerConfig{
				LeaderAddr: led.Addr(),
				Partition:  p.idx,
				Epoch:      1,
				Obs:        cfg.Obs,
			})
			fn.fol.Start()
			p.followers = append(p.followers, fn)
		}
		for _, fn := range p.followers {
			if !waitLSN(fn.eng.AppliedLSN, seededLSN, 5*time.Second) {
				return nil, fmt.Errorf("chaos: partition %d follower never caught up to seed", pi)
			}
		}
	}

	// Router over the boot topology.
	rcfg := proxy.RouterConfig{
		ClientConfig: client.Config{
			PoolSize:       cfg.Clients,
			MaxRetries:     4,
			BackoffBase:    300 * time.Microsecond,
			DialTimeout:    500 * time.Millisecond,
			RequestTimeout: 2 * cfg.LockTimeout,
			RetryConnLost:  true,
			Dial:           inj.Dial,
		},
		MaxRetries:   60,
		MaxRedirects: 8,
		BackoffBase:  2 * time.Millisecond,
	}
	for pi := 0; pi < cfg.Partitions; pi++ {
		var fols []string
		for _, fn := range topo[pi].followers {
			fols = append(fols, fn.clientAddr())
		}
		rcfg.Partitions = append(rcfg.Partitions, proxy.PartitionNodes{
			Leader: topo[pi].leaderAddr(), Followers: fols,
		})
	}
	router := proxy.NewRouter(rcfg)
	defer router.Close()

	// Arm the whole-node kill on the victim leader: one of the commit or
	// WAL-ship crash points, a handful of visits in, so it lands
	// mid-workload with acknowledged commits on both sides of it.
	if victim >= 0 {
		points := []string{
			server.CrashPointCommitBefore, server.CrashPointCommitAfter,
			wal.CrashPointShipBefore, wal.CrashPointShipAfter,
		}
		topo[victim].leader.plan.Arm(points[supRng.Intn(len(points))], 4+supRng.Intn(12))
	}

	// Failover supervisor: one goroutine per partition watching for the
	// leader's death.
	workDone := make(chan struct{})
	var supWG sync.WaitGroup
	var supMu sync.Mutex
	var supErr error
	for pi := 0; pi < cfg.Partitions; pi++ {
		p := topo[pi]
		supWG.Add(1)
		go func() {
			defer supWG.Done()
			dead := p.leader
			select {
			case <-workDone:
				return
			case <-dead.srv.Crashed():
			}
			point := dead.srv.CrashPoint()
			promoted, lsn, err := failover(p, router)
			supMu.Lock()
			rep.KilledPartition = int(p.idx)
			rep.CrashPoint = point
			rep.PromotedLSN = lsn
			if err != nil {
				supErr = err
			}
			_ = promoted
			supMu.Unlock()
		}()
	}

	// Workload: router-driven single-partition transfers with a marker row
	// per attempt, interleaved with bounded-staleness reads.
	start := time.Now()
	var wg sync.WaitGroup
	var statsMu sync.Mutex
	ackedMarkers := make([][]int64, cfg.Partitions)
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(worker int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + worker))
			markerCursor := markerBase + worker*1_000_000
			nextMarker := func(p uint32) int64 {
				for {
					pk := markerCursor
					markerCursor++
					if wire.PartitionOf(pk, parts) == p {
						return pk
					}
				}
			}
			for i := 0; i < cfg.Ops; i++ {
				pi := rng.Intn(cfg.Partitions)
				p := uint32(pi)
				acct := accounts[pi]
				if i%4 == 3 {
					// Bounded-staleness read: must see every balance this
					// router has already been acked for.
					err := router.RunReadTxn(p, engine.IsolationDefault, func(txn *client.Txn) error {
						pk := acct[rng.Intn(len(acct))]
						rows, err := txn.Select("accounts", storage.ByPK(pk), wire.LockNone)
						if err != nil {
							return err
						}
						if len(rows.Rows) != 1 {
							return fmt.Errorf("chaos: account %d: got %d rows", pk, len(rows.Rows))
						}
						return nil
					})
					statsMu.Lock()
					if err != nil {
						rep.ReadErrs++
					} else {
						rep.Reads++
					}
					statsMu.Unlock()
					continue
				}
				a := acct[rng.Intn(len(acct))]
				b := acct[rng.Intn(len(acct))]
				for b == a {
					b = acct[rng.Intn(len(acct))]
				}
				amt := 1 + rng.Int63n(5)
				// Each attempt gets a fresh marker: an ambiguous commit
				// (conn lost mid-COMMIT) may or may not have landed, so
				// only the acknowledged final attempt's marker joins the
				// oracle set.
				var marker int64
				err := router.RunTxn(p, engine.IsolationDefault, func(txn *client.Txn) error {
					marker = nextMarker(p)
					if err := transfer(txn, a, b, amt); err != nil {
						return err
					}
					_, err := txn.Insert("txlog", map[string]storage.Value{
						storage.PKColumn: marker, "worker": worker,
					})
					return err
				})
				statsMu.Lock()
				if err != nil {
					rep.TransferErrs++
				} else {
					rep.Transfers++
					ackedMarkers[pi] = append(ackedMarkers[pi], marker)
				}
				statsMu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	close(workDone)
	supWG.Wait()
	if supErr != nil {
		return nil, supErr
	}
	rep.Redirects = router.Redirects()
	rep.LeaderReadFallbacks = router.LeaderReadFallbacks()
	router.Close()

	// Tear down: servers first (sessions drain, locks release), then the
	// replication roles.
	for _, n := range allNodes {
		_ = n.srv.Close()
	}
	for _, p := range topo {
		p.mu.Lock()
		nodes := append([]*replNode{p.leader}, p.followers...)
		p.mu.Unlock()
		for _, n := range nodes {
			if n == nil {
				continue
			}
			n.mu.Lock()
			led, fol := n.led, n.fol
			n.mu.Unlock()
			if fol != nil {
				fol.Stop()
			}
			if led != nil {
				led.Close()
			}
		}
	}

	// Oracle 1: acked ⊆ promoted — every acknowledged marker row exists on
	// the partition's current leader.
	for pi, markers := range ackedMarkers {
		rep.AckedMarkers += len(markers)
		p := topo[pi]
		p.mu.Lock()
		cur := p.leader
		p.mu.Unlock()
		missing := 0
		for _, m := range markers {
			row, err := probeRow(cur.eng, "txlog", m)
			if err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("partition %d: marker probe: %v", pi, err))
				break
			}
			if row == nil {
				missing++
			}
		}
		if missing > 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("partition %d: %d acknowledged transfers missing on current leader", pi, missing))
		}
	}

	// Oracle 2: per-partition, per-era committed histories are conflict
	// serializable. The dead leader's era and the promoted follower's era
	// are separate engines with colliding txn IDs, so they are checked
	// separately.
	for _, n := range allNodes {
		if n.hist == nil {
			continue
		}
		if cycle := analyzer.CheckCommitted(n.hist.Items()); cycle != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("committed history not serializable: cycle %v", cycle))
		}
	}

	// Oracle 3: per-partition balance conservation on the current leader.
	for pi := range topo {
		p := topo[pi]
		p.mu.Lock()
		cur := p.leader
		p.mu.Unlock()
		sum, err := probeSum(cur.eng)
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("partition %d: balance probe: %v", pi, err))
			continue
		}
		if want := int64(cfg.Rows) * InitialBalance; sum != want {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("partition %d: balance sum %d, want %d", pi, sum, want))
		}
	}

	// Oracle 4: zero leaked locks on every node, dead or alive.
	for i, n := range allNodes {
		if leaked := waitForZeroLocks(n.eng.LockManager(), 2*time.Second); leaked != 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("node %d: %d locks still held after teardown", i, leaked))
		}
	}
	return rep, nil
}

// failover promotes the highest-applied-LSN follower of p and rewires the
// topology and router. Called once, from p's supervisor goroutine, after
// the leader's server reports Crashed.
func failover(p *replPartition, router *proxy.Router) (*replNode, uint64, error) {
	p.mu.Lock()
	dead := p.leader
	survivors := append([]*replNode(nil), p.followers...)
	p.mu.Unlock()

	_ = dead.srv.Close()
	dead.mu.Lock()
	deadLed := dead.led
	dead.led = nil
	dead.mu.Unlock()
	if deadLed != nil {
		deadLed.Close() // cuts the followers' streams; they begin retrying
	}

	if len(survivors) == 0 {
		return nil, 0, fmt.Errorf("chaos: partition %d leader died with no followers", p.idx)
	}
	best := survivors[0]
	for _, fn := range survivors[1:] {
		if fn.fol.AppliedLSN() > best.fol.AppliedLSN() {
			best = fn
		}
	}
	lsn := best.fol.AppliedLSN()
	rest := make([]*replNode, 0, len(survivors)-1)
	for _, fn := range survivors {
		if fn != best {
			rest = append(rest, fn)
		}
	}

	quorum := repl.SemiSync
	if len(rest) == 0 {
		// Strict semi-sync with zero followers would wedge every commit.
		quorum = repl.Async
	}
	promoted, err := best.fol.Promote(repl.LeaderConfig{
		Addr:      "127.0.0.1:0",
		Partition: p.idx,
		Quorum:    quorum,
		Replicas:  1 + len(rest),
	})
	if err != nil {
		return nil, lsn, fmt.Errorf("chaos: partition %d promote: %w", p.idx, err)
	}
	best.mu.Lock()
	best.led = promoted
	best.mu.Unlock()
	for _, fn := range rest {
		fn.fol.Retarget(promoted.Addr())
	}

	// Trace the promoted era before it becomes writable, so its committed
	// history is complete.
	best.hist = analyzer.NewHistory()
	best.eng.SetTracer(best.hist)

	p.mu.Lock()
	p.leader = best
	p.followers = rest
	p.mu.Unlock()
	best.writable.Store(true) // LeaderHint now points here via p.leaderAddr

	var restAddrs []string
	for _, fn := range rest {
		restAddrs = append(restAddrs, fn.clientAddr())
	}
	router.UpdateLeader(p.idx, best.clientAddr())
	router.SetFollowers(p.idx, restAddrs)
	return best, lsn, nil
}

// probeRow reads one row by primary key in a fresh transaction.
func probeRow(eng *engine.Engine, table string, pk int64) (storage.Row, error) {
	txn := eng.Begin(engine.IsolationDefault)
	defer func() { _ = txn.Rollback() }()
	return txn.SelectOne(table, storage.ByPK(pk))
}

// waitLSN polls fn until it reaches target or the deadline passes.
func waitLSN(fn func() uint64, target uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if fn() >= target {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return fn() >= target
}

// ReplRunSeeds runs n consecutive replicated seeds starting at first,
// returning the reports and the first failing report (nil if all passed).
func ReplRunSeeds(first int64, n int, mk func(seed int64) ReplConfig) ([]*ReplReport, *ReplReport, error) {
	var reports []*ReplReport
	var failed *ReplReport
	for s := first; s < first+int64(n); s++ {
		rep, err := ReplRun(mk(s))
		if err != nil {
			return reports, failed, err
		}
		reports = append(reports, rep)
		if failed == nil && rep.Failed() {
			failed = rep
		}
	}
	return reports, failed, nil
}
