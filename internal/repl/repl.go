// Package repl is the leader/follower log-replication subsystem: it ships
// the WAL's group-commit batches to follower engine nodes over the binary
// wire protocol and strengthens the durability invariant from
// "acknowledged ⊆ recovered" to "acknowledged ⊆ replicated".
//
// Topology per partition: one Leader owns the writable engine and a
// replication listener; each Follower owns a read-only engine and one
// outbound connection. A follower subscribes with its applied LSN; the
// leader first streams catch-up SNAPSHOT frames cut from its durable log at
// record boundaries, then pushes every subsequent group-commit batch as a
// BATCH frame the instant it is locally durable (the WAL's shipper hook).
// Followers apply idempotently by LSN (engine.ApplyReplicated) and push ACK
// frames carrying their durable frontier.
//
// Ack quorums: Async acknowledges commits on local durability alone (the
// pre-replication contract). SemiSync holds every commit ack until at least
// one follower has the batch durable, so losing the leader loses no
// acknowledged commit as long as any follower survives — MySQL semisync's
// contract, and the one the failover chaos suite proves. Majority holds the
// ack until a majority of the replica set (leader included) has the batch.
// A non-zero AckTimeout degrades a stalled quorum wait to async (counted by
// repl_degraded_total) instead of wedging commits forever, mirroring
// rpl_semi_sync_master_timeout; leave it zero to hold the strict guarantee.
//
// Failover: the supervisor (see chaos.ReplRun) promotes the follower with
// the highest applied LSN. Promotion bumps the epoch; frames from a deposed
// leader's lower epoch are rejected by followers, and subscribers claiming a
// higher epoch than a leader's own tell that leader it has been superseded.
package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/obs"
	"adhoctx/internal/wal"
	"adhoctx/internal/wire"
)

// Quorum selects how many replicas must hold a batch durably before its
// commits are acknowledged.
type Quorum int

// Quorum modes.
const (
	// Async: local durability only; shipping is fire-and-forget.
	Async Quorum = iota
	// SemiSync: at least one follower has the batch durable.
	SemiSync
	// Majority: a majority of the replica set (leader included).
	Majority
)

// String implements fmt.Stringer.
func (q Quorum) String() string {
	switch q {
	case Async:
		return "async"
	case SemiSync:
		return "semisync"
	case Majority:
		return "majority"
	default:
		return fmt.Sprintf("quorum(%d)", int(q))
	}
}

// maxChunk bounds the WAL bytes per catch-up SNAPSHOT frame, comfortably
// under wire.MaxFrame with frame headers included.
const maxChunk = 256 << 10

// outboxDepth bounds queued frames per follower. A follower that falls this
// far behind the live stream is cut off and reconnects through the catch-up
// path, which is built for arbitrary gaps; stalling the leader's flusher on
// its slowest follower's socket is never acceptable.
const outboxDepth = 256

// LeaderConfig configures a replication leader.
type LeaderConfig struct {
	// Addr is the replication listen address ("127.0.0.1:0" for tests).
	Addr string
	// Partition is the partition this leader owns; subscribers naming any
	// other partition are rejected.
	Partition uint32
	// Epoch is the leader's term, bumped on every promotion.
	Epoch uint64
	// Quorum is the ack mode.
	Quorum Quorum
	// Replicas is the replica-set size including the leader (Majority mode).
	Replicas int
	// AckTimeout degrades a stalled quorum wait to async after this long;
	// 0 waits forever (strict semi-sync).
	AckTimeout time.Duration
	// WrapConn, when non-nil, wraps accepted replication connections (fault
	// injection seam, like server.Config.WrapConn).
	WrapConn func(net.Conn) net.Conn
	// Obs, when non-nil, receives the replication metrics.
	Obs *obs.Registry
}

// leaderMetrics is the leader's resolved instrument set.
type leaderMetrics struct {
	shipped  *obs.Counter
	acks     *obs.Counter
	degraded *obs.Counter
	lag      *obs.Gauge
}

// Leader accepts follower subscriptions and ships the engine's WAL to them.
// Start installs the WAL shipper hook; Close uninstalls it.
type Leader struct {
	eng *engine.Engine
	cfg LeaderConfig
	ln  net.Listener

	mu        sync.Mutex
	cond      *sync.Cond
	followers map[*followerConn]struct{}
	closed    bool

	wg sync.WaitGroup

	degrades atomic.Int64
	om       *leaderMetrics
}

// followerConn is the leader's view of one subscribed follower.
type followerConn struct {
	conn   net.Conn
	outbox chan []byte // encoded frames, oldest first
	ack    uint64      // guarded by Leader.mu
	gone   bool        // guarded by Leader.mu
}

// NewLeader returns an unstarted leader for eng's partition.
func NewLeader(eng *engine.Engine, cfg LeaderConfig) *Leader {
	l := &Leader{eng: eng, cfg: cfg, followers: make(map[*followerConn]struct{})}
	l.cond = sync.NewCond(&l.mu)
	if cfg.Obs != nil {
		l.om = &leaderMetrics{
			shipped:  cfg.Obs.Counter("repl_shipped_batches_total"),
			acks:     cfg.Obs.Counter("repl_acks_total"),
			degraded: cfg.Obs.Counter("repl_degraded_total"),
			lag:      cfg.Obs.Gauge("repl_lag_lsn"),
		}
	}
	return l
}

// Start listens for subscribers and installs the WAL shipper hook. From this
// point every locally durable batch blocks commit acknowledgement on the
// configured quorum.
func (l *Leader) Start() error {
	ln, err := net.Listen("tcp", l.cfg.Addr)
	if err != nil {
		return err
	}
	l.ln = ln
	l.eng.WAL().SetShipper(l.Ship)
	l.wg.Add(1)
	go l.acceptLoop()
	return nil
}

// Addr returns the replication listen address.
func (l *Leader) Addr() string {
	if l.ln == nil {
		return l.cfg.Addr
	}
	return l.ln.Addr().String()
}

// Epoch returns the leader's term.
func (l *Leader) Epoch() uint64 { return l.cfg.Epoch }

// Degrades returns how many quorum waits timed out into async mode.
func (l *Leader) Degrades() int64 { return l.degrades.Load() }

// Close uninstalls the shipper hook, stops the listener, disconnects every
// follower, and releases any commit stuck in a quorum wait.
func (l *Leader) Close() {
	l.eng.WAL().SetShipper(nil)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	conns := make([]*followerConn, 0, len(l.followers))
	for fc := range l.followers {
		conns = append(conns, fc)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if l.ln != nil {
		l.ln.Close()
	}
	for _, fc := range conns {
		fc.conn.Close()
	}
	l.wg.Wait()
}

func (l *Leader) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		if l.cfg.WrapConn != nil {
			conn = l.cfg.WrapConn(conn)
		}
		l.wg.Add(1)
		go l.serveFollower(conn)
	}
}

// serveFollower runs one subscriber: handshake, subscribe, catch-up, then a
// writer/reader pair until either side drops.
func (l *Leader) serveFollower(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	if err := wire.ServerHandshake(conn); err != nil {
		return
	}
	payload, err := wire.ReadFrame(conn, nil)
	if err != nil {
		return
	}
	var sub wire.ReplFrame
	if err := wire.DecodeReplFrame(payload, &sub); err != nil || sub.Kind != wire.ReplSubscribe {
		return
	}
	if sub.Partition != l.cfg.Partition || sub.Epoch > l.cfg.Epoch {
		// Wrong partition, or the cluster has moved past this leader's term
		// — either way this leader must not feed it.
		return
	}

	fc := &followerConn{conn: conn, outbox: make(chan []byte, outboxDepth), ack: sub.FromLSN}

	// Cut the catch-up snapshot and register under one critical section.
	// Ship enqueues under the same mutex after its batch is durable, so the
	// follower's stream is gapless: everything durable before registration
	// is in the snapshot, everything after is enqueued behind it (overlap is
	// fine — apply is idempotent by LSN).
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	suffix, _, _, serr := wal.SliceFrom(l.eng.WALBytes(), sub.FromLSN)
	if serr != nil {
		l.mu.Unlock()
		return
	}
	snapshot := cutChunks(suffix)
	l.followers[fc] = struct{}{}
	l.mu.Unlock()

	done := make(chan struct{})
	go func() { // writer: catch-up snapshot first, then drain the outbox
		defer close(done)
		for _, ch := range snapshot {
			if err := wire.WriteFrame(conn, ch.encode(l.cfg.Epoch, wire.ReplSnapshot)); err != nil {
				conn.Close() // unblocks the reader below
				return
			}
		}
		for frame := range fc.outbox {
			if err := wire.WriteFrame(conn, frame); err != nil {
				conn.Close()
				return
			}
		}
	}()

	var buf []byte
	var ack wire.ReplFrame
	for { // reader: acks
		payload, err := wire.ReadFrame(conn, buf)
		if err != nil {
			break
		}
		buf = payload
		if err := wire.DecodeReplFrame(payload, &ack); err != nil || ack.Kind != wire.ReplAck {
			break
		}
		l.noteAck(fc, ack.AckLSN)
	}
	// Deregister, then close the outbox to end the writer. Ship only
	// enqueues to registered followers under l.mu, so close cannot race a
	// send; any frames still queued fail their write against the closed conn.
	l.mu.Lock()
	fc.gone = true
	delete(l.followers, fc)
	close(fc.outbox)
	l.cond.Broadcast()
	l.mu.Unlock()
	conn.Close()
	<-done
}

// noteAck records a follower's durable frontier and wakes quorum waiters.
func (l *Leader) noteAck(fc *followerConn, lsn uint64) {
	l.mu.Lock()
	if lsn > fc.ack {
		fc.ack = lsn
	}
	l.cond.Broadcast()
	lag := l.lagLocked()
	l.mu.Unlock()
	if l.om != nil {
		l.om.acks.Inc()
		l.om.lag.Set(lag)
	}
}

// lagLocked computes the replication lag in LSNs: the leader's durable
// frontier minus the slowest connected follower's ack (0 with no followers).
func (l *Leader) lagLocked() int64 {
	durable := l.eng.AppliedLSN()
	var minAck uint64
	first := true
	for fc := range l.followers {
		if first || fc.ack < minAck {
			minAck = fc.ack
			first = false
		}
	}
	if first || minAck >= durable {
		return 0
	}
	return int64(durable - minAck)
}

// FollowerAcks returns the ack frontier of every connected follower
// (diagnostics; the chaos supervisor reads applied LSNs from the follower
// side instead, which also covers disconnected nodes).
func (l *Leader) FollowerAcks() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, 0, len(l.followers))
	for fc := range l.followers {
		out = append(out, fc.ack)
	}
	return out
}

// ackNeeded returns how many follower acks a batch needs before its commits
// may be acknowledged.
func (l *Leader) ackNeeded() int {
	switch l.cfg.Quorum {
	case SemiSync:
		return 1
	case Majority:
		n := l.cfg.Replicas
		if n < 2 {
			return 0
		}
		return n/2 + 1 - 1 // majority of the set, minus the leader itself
	default:
		return 0
	}
}

// Ship is the WAL shipper hook: raw covers records first..last, already
// locally durable. It broadcasts the batch to every connected follower and
// blocks until the quorum holds it durably (or the AckTimeout degrade
// fires). Runs on the WAL flusher goroutine, so commit acknowledgement of
// the whole batch waits on it — that is the point.
func (l *Leader) Ship(raw []byte, first, last uint64) {
	frame, err := wire.AppendReplFrame(nil, &wire.ReplFrame{
		Kind: wire.ReplBatch, Epoch: l.cfg.Epoch,
		FirstLSN: first, LastLSN: last, Raw: raw,
	})
	if err != nil {
		return
	}
	l.mu.Lock()
	for fc := range l.followers {
		select {
		case fc.outbox <- frame:
		default:
			// Hopelessly behind: cut it off rather than stall the flusher.
			// It reconnects through catch-up.
			fc.conn.Close()
		}
	}
	need := l.ackNeeded()
	if l.om != nil {
		l.om.shipped.Inc()
		l.om.lag.Set(l.lagLocked())
	}
	if need == 0 {
		l.mu.Unlock()
		return
	}

	var deadline *time.Timer
	timedOut := false
	if l.cfg.AckTimeout > 0 {
		deadline = time.AfterFunc(l.cfg.AckTimeout, func() {
			l.mu.Lock()
			timedOut = true
			l.cond.Broadcast()
			l.mu.Unlock()
		})
	}
	for !l.closed && !timedOut && l.ackedLocked(last) < need {
		l.cond.Wait()
	}
	degraded := timedOut && l.ackedLocked(last) < need
	l.mu.Unlock()
	if deadline != nil {
		deadline.Stop()
	}
	if degraded {
		l.degrades.Add(1)
		if l.om != nil {
			l.om.degraded.Inc()
		}
	}
}

// ackedLocked counts followers whose durable frontier covers lsn.
func (l *Leader) ackedLocked(lsn uint64) int {
	n := 0
	for fc := range l.followers {
		if !fc.gone && fc.ack >= lsn {
			n++
		}
	}
	return n
}

// chunk is one catch-up frame's worth of WAL bytes.
type chunk struct {
	raw         []byte
	first, last uint64
}

func (c chunk) encode(epoch uint64, kind wire.ReplKind) []byte {
	b, _ := wire.AppendReplFrame(nil, &wire.ReplFrame{
		Kind: kind, Epoch: epoch, FirstLSN: c.first, LastLSN: c.last, Raw: c.raw,
	})
	return b
}

// cutChunks splits raw at record boundaries into maxChunk-bounded pieces.
func cutChunks(raw []byte) []chunk {
	var out []chunk
	var cur chunk
	start := 0
	off := 0
	_ = wal.Scan(raw, func(lsn uint64, rec []byte) error {
		if len(cur.raw) > 0 && len(cur.raw)+len(rec) > maxChunk {
			out = append(out, cur)
			start = off
			cur = chunk{}
		}
		off += len(rec)
		cur.raw = raw[start:off]
		if cur.first == 0 {
			cur.first = lsn
		}
		cur.last = lsn
		return nil
	})
	if len(cur.raw) > 0 {
		out = append(out, cur)
	}
	return out
}

// errStaleEpoch reports a frame from a deposed leader.
var errStaleEpoch = errors.New("repl: frame from a stale leader epoch")
