package repl

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/obs"
	"adhoctx/internal/sim"
	"adhoctx/internal/wire"
)

// Crash points checked by the follower's apply loop (see sim.CrashPlan).
const (
	// CrashPointApplyBefore fires with a batch received but none of it
	// applied: the follower dies holding only what it already acked.
	CrashPointApplyBefore = "repl/apply:before"
	// CrashPointApplyAfter fires with the batch durable and visible locally
	// but the ack unsent: the leader must tolerate re-acking after
	// reconnect (idempotent by LSN).
	CrashPointApplyAfter = "repl/apply:after"
)

// FollowerConfig configures a replication follower.
type FollowerConfig struct {
	// LeaderAddr is the leader's replication listen address.
	LeaderAddr string
	// Partition must match the leader's.
	Partition uint32
	// Epoch is the highest leader term this follower has seen (0 at boot).
	Epoch uint64
	// Dial, when non-nil, replaces net.Dial (fault injection seam).
	Dial func(network, addr string) (net.Conn, error)
	// RetryInterval paces reconnect attempts (default 25ms).
	RetryInterval time.Duration
	// Crash, when non-nil, arms the repl/apply crash points.
	Crash *sim.CrashPlan
	// Obs, when non-nil, receives the apply-latency histogram.
	Obs *obs.Registry
}

// Follower subscribes a read-only engine to a leader's replication stream
// and applies batches as they arrive. It reconnects (and re-subscribes from
// its durable frontier) after any stream error — a torn frame from a dying
// leader is indistinguishable from a dropped connection and is handled
// identically.
type Follower struct {
	eng *engine.Engine
	cfg FollowerConfig

	mu      sync.Mutex
	conn    net.Conn
	stopped bool

	epoch   atomic.Uint64
	crashed atomic.Bool
	wg      sync.WaitGroup

	applyHist *obs.Histogram
}

// NewFollower returns an unstarted follower feeding eng.
func NewFollower(eng *engine.Engine, cfg FollowerConfig) *Follower {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 25 * time.Millisecond
	}
	f := &Follower{eng: eng, cfg: cfg}
	f.epoch.Store(cfg.Epoch)
	if cfg.Obs != nil {
		f.applyHist = cfg.Obs.Histogram("repl_apply_seconds")
	}
	return f
}

// Start launches the subscribe/apply loop.
func (f *Follower) Start() {
	f.wg.Add(1)
	go f.run()
}

// AppliedLSN returns the follower's durable replication frontier — the
// promotion criterion (highest wins) and the staleness clock its read
// sessions are judged by.
func (f *Follower) AppliedLSN() uint64 { return f.eng.AppliedLSN() }

// LastEpoch returns the highest leader term observed.
func (f *Follower) LastEpoch() uint64 { return f.epoch.Load() }

// Crashed reports whether an armed repl/apply crash point killed the apply
// loop (the follower node is dead, not merely disconnected).
func (f *Follower) Crashed() bool { return f.crashed.Load() }

// Stop ends the apply loop and closes the stream.
func (f *Follower) Stop() {
	f.mu.Lock()
	f.stopped = true
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// Retarget points the follower at a new leader (after a promotion) and
// revives the loop if it had stopped. The current stream, if any, is cut;
// the next subscribe resumes from the follower's durable frontier.
func (f *Follower) Retarget(leaderAddr string) {
	f.mu.Lock()
	f.cfg.LeaderAddr = leaderAddr
	revive := f.stopped && !f.crashed.Load()
	f.stopped = f.stopped && !revive
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	if revive {
		f.Start()
	}
}

// Promote stops following and returns a started Leader on this follower's
// engine with the next epoch. The caller re-targets surviving followers at
// Leader.Addr() and flips its serving node writable.
func (f *Follower) Promote(cfg LeaderConfig) (*Leader, error) {
	f.Stop()
	if cfg.Epoch == 0 {
		cfg.Epoch = f.LastEpoch() + 1
	}
	l := NewLeader(f.eng, cfg)
	if err := l.Start(); err != nil {
		return nil, err
	}
	return l, nil
}

func (f *Follower) run() {
	defer f.wg.Done()
	for {
		f.mu.Lock()
		stopped := f.stopped
		f.mu.Unlock()
		if stopped {
			return
		}
		if err := f.stream(); err != nil {
			if sim.IsCrash(err) {
				f.crashed.Store(true)
				return
			}
		}
		time.Sleep(f.cfg.RetryInterval)
	}
}

// stream runs one connection worth of subscribe/apply/ack. Any transport or
// decode error returns (the caller reconnects); an armed crash point returns
// the *sim.CrashError (the caller treats the node as dead).
func (f *Follower) stream() (err error) {
	defer func() { err = sim.RecoverCrash(recover(), err) }()

	dial := f.cfg.Dial
	if dial == nil {
		dial = net.Dial
	}
	f.mu.Lock()
	addr := f.cfg.LeaderAddr // Retarget rewrites this between streams
	f.mu.Unlock()
	conn, err := dial("tcp", addr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		conn.Close()
		return nil
	}
	f.conn = conn
	f.mu.Unlock()
	defer conn.Close()

	if err := wire.ClientHandshake(conn); err != nil {
		return err
	}
	sub, err := wire.AppendReplFrame(nil, &wire.ReplFrame{
		Kind:      wire.ReplSubscribe,
		Partition: f.cfg.Partition,
		Epoch:     f.epoch.Load(),
		FromLSN:   f.eng.AppliedLSN(),
	})
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, sub); err != nil {
		return err
	}

	var buf []byte
	var fr wire.ReplFrame
	for {
		payload, rerr := wire.ReadFrame(conn, buf)
		if rerr != nil {
			return rerr
		}
		buf = payload
		if derr := wire.DecodeReplFrame(payload, &fr); derr != nil {
			return derr
		}
		switch fr.Kind {
		case wire.ReplBatch, wire.ReplSnapshot:
			if fr.Epoch < f.epoch.Load() {
				return errStaleEpoch
			}
			f.epoch.Store(fr.Epoch)
			f.cfg.Crash.Check(CrashPointApplyBefore)
			start := time.Now()
			applied, aerr := f.eng.ApplyReplicated(fr.Raw)
			if aerr != nil {
				return aerr
			}
			if f.applyHist != nil {
				f.applyHist.Since(start)
			}
			f.cfg.Crash.Check(CrashPointApplyAfter)
			ack, aerr := wire.AppendReplFrame(nil, &wire.ReplFrame{
				Kind: wire.ReplAck, Epoch: fr.Epoch, AckLSN: applied,
			})
			if aerr != nil {
				return aerr
			}
			if werr := wire.WriteFrame(conn, ack); werr != nil {
				return werr
			}
		default:
			return &wire.Error{Code: wire.CodeBadRequest, Msg: "unexpected frame on replication stream"}
		}
	}
}
