package repl

import (
	"fmt"
	"testing"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

func newEngine(t *testing.T, crash *sim.CrashPlan, group bool) *engine.Engine {
	t.Helper()
	eng := engine.New(engine.Config{
		Dialect:     engine.MySQL,
		GroupCommit: group,
		Crash:       crash,
	})
	eng.CreateTable(storage.NewSchema("accounts",
		storage.Column{Name: "bal", Type: storage.TInt},
	))
	return eng
}

func commitRow(t *testing.T, eng *engine.Engine, bal int64) int64 {
	t.Helper()
	txn := eng.Begin(engine.IsolationDefault)
	pk, err := txn.Insert("accounts", map[string]storage.Value{"bal": bal})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return pk
}

func countRows(t *testing.T, eng *engine.Engine) int {
	t.Helper()
	txn := eng.Begin(engine.IsolationDefault)
	defer txn.Rollback()
	rows, err := txn.Select("accounts", storage.All{})
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	return len(rows)
}

func hasRow(t *testing.T, eng *engine.Engine, pk int64) bool {
	t.Helper()
	txn := eng.Begin(engine.IsolationDefault)
	defer txn.Rollback()
	row, err := txn.SelectOne("accounts", storage.ByPK(pk))
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	return row != nil
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func startLeader(t *testing.T, eng *engine.Engine, cfg LeaderConfig) *Leader {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	l := NewLeader(eng, cfg)
	if err := l.Start(); err != nil {
		t.Fatalf("leader start: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

func startFollower(t *testing.T, eng *engine.Engine, cfg FollowerConfig) *Follower {
	t.Helper()
	f := NewFollower(eng, cfg)
	f.Start()
	t.Cleanup(f.Stop)
	return f
}

// TestSemiSyncCommitWaitsForFollower: after a semi-sync commit returns, the
// committed row is already durable and visible on the follower — no polling
// needed, because the ack was held until the follower acked the batch.
func TestSemiSyncCommitWaitsForFollower(t *testing.T) {
	le := newEngine(t, nil, true)
	fe := newEngine(t, nil, false)
	l := startLeader(t, le, LeaderConfig{Quorum: SemiSync})
	f := startFollower(t, fe, FollowerConfig{LeaderAddr: l.Addr()})

	for i := 0; i < 20; i++ {
		pk := commitRow(t, le, int64(i))
		if got, want := f.AppliedLSN(), le.AppliedLSN(); got < want {
			t.Fatalf("commit %d acked with follower at LSN %d < leader %d", i, got, want)
		}
		if !hasRow(t, fe, pk) {
			t.Fatalf("commit %d acked but row %d not on follower", i, pk)
		}
	}
}

// TestFollowerCatchUp: a follower subscribing late receives the historical
// log as snapshot frames, then rides the live stream.
func TestFollowerCatchUp(t *testing.T) {
	le := newEngine(t, nil, false)
	fe := newEngine(t, nil, false)
	l := startLeader(t, le, LeaderConfig{Quorum: Async})

	for i := 0; i < 10; i++ {
		commitRow(t, le, int64(i))
	}
	f := startFollower(t, fe, FollowerConfig{LeaderAddr: l.Addr()})
	waitUntil(t, "catch-up", func() bool { return f.AppliedLSN() >= le.AppliedLSN() })
	if n := countRows(t, fe); n != 10 {
		t.Fatalf("follower has %d rows after catch-up, want 10", n)
	}

	for i := 10; i < 15; i++ {
		commitRow(t, le, int64(i))
	}
	waitUntil(t, "live stream", func() bool { return f.AppliedLSN() >= le.AppliedLSN() })
	if n := countRows(t, fe); n != 15 {
		t.Fatalf("follower has %d rows after live stream, want 15", n)
	}
}

// TestReconnectResubscribesIdempotently: cutting the stream mid-run loses
// nothing and duplicates nothing — the follower resubscribes from its
// durable frontier and overlapping redelivery is skipped by LSN.
func TestReconnectResubscribesIdempotently(t *testing.T) {
	le := newEngine(t, nil, false)
	fe := newEngine(t, nil, false)
	l := startLeader(t, le, LeaderConfig{Quorum: Async})
	f := startFollower(t, fe, FollowerConfig{LeaderAddr: l.Addr()})

	for i := 0; i < 5; i++ {
		commitRow(t, le, int64(i))
	}
	waitUntil(t, "first sync", func() bool { return f.AppliedLSN() >= le.AppliedLSN() })

	f.Retarget(l.Addr()) // cuts the stream; reconnects to the same leader
	for i := 5; i < 10; i++ {
		commitRow(t, le, int64(i))
	}
	waitUntil(t, "resync", func() bool { return f.AppliedLSN() >= le.AppliedLSN() })
	if n := countRows(t, fe); n != 10 {
		t.Fatalf("follower has %d rows after reconnect, want 10", n)
	}
}

// TestApplyReplicatedIsIdempotent: redelivering the whole log is a no-op.
func TestApplyReplicatedIsIdempotent(t *testing.T) {
	le := newEngine(t, nil, false)
	fe := newEngine(t, nil, false)
	for i := 0; i < 7; i++ {
		commitRow(t, le, int64(i))
	}
	raw := le.WALBytes()
	first, err := fe.ApplyReplicated(raw)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fe.ApplyReplicated(raw)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("applied LSN moved on redelivery: %d -> %d", first, again)
	}
	if n := countRows(t, fe); n != 7 {
		t.Fatalf("follower has %d rows after double apply, want 7", n)
	}
}

// TestMajorityQuorum: with a 3-replica set, one follower ack satisfies the
// majority (leader + 1 of 2 followers).
func TestMajorityQuorum(t *testing.T) {
	le := newEngine(t, nil, true)
	fe1 := newEngine(t, nil, false)
	fe2 := newEngine(t, nil, false)
	l := startLeader(t, le, LeaderConfig{Quorum: Majority, Replicas: 3})
	f1 := startFollower(t, fe1, FollowerConfig{LeaderAddr: l.Addr()})
	f2 := startFollower(t, fe2, FollowerConfig{LeaderAddr: l.Addr()})

	pk := commitRow(t, le, 1)
	if f1.AppliedLSN() < le.AppliedLSN() && f2.AppliedLSN() < le.AppliedLSN() {
		t.Fatal("majority commit acked with no follower at the commit LSN")
	}
	waitUntil(t, "full replication", func() bool {
		return f1.AppliedLSN() >= le.AppliedLSN() && f2.AppliedLSN() >= le.AppliedLSN()
	})
	if !hasRow(t, fe1, pk) || !hasRow(t, fe2, pk) {
		t.Fatal("row missing on a follower after full replication")
	}
}

// TestAckTimeoutDegrades: a semi-sync leader with no followers and a
// degrade window acks after the timeout instead of wedging commits forever.
func TestAckTimeoutDegrades(t *testing.T) {
	le := newEngine(t, nil, false)
	l := startLeader(t, le, LeaderConfig{Quorum: SemiSync, AckTimeout: 20 * time.Millisecond})

	done := make(chan struct{})
	go func() {
		commitRow(t, le, 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("degraded semi-sync commit never returned")
	}
	if l.Degrades() == 0 {
		t.Fatal("degrade not counted")
	}
}

// TestSemiSyncCrashBeforeShipLosesNoAckedCommit is the acceptance-criteria
// proof that a semi-sync ack is never returned before the batch is durable
// on at least one follower. The leader is killed at repl/ship:before — after
// its local fsync, before any follower saw the batch. The dying commit must
// NOT have been acknowledged (the crash error is its "ack"), and promoting
// the follower must surface every commit that WAS acknowledged.
func TestSemiSyncCrashBeforeShipLosesNoAckedCommit(t *testing.T) {
	for _, group := range []bool{false, true} {
		t.Run(fmt.Sprintf("group=%v", group), func(t *testing.T) {
			plan := &sim.CrashPlan{}
			le := newEngine(t, plan, group)
			fe := newEngine(t, nil, false)
			l := startLeader(t, le, LeaderConfig{Quorum: SemiSync, Epoch: 1})
			f := startFollower(t, fe, FollowerConfig{LeaderAddr: l.Addr()})

			acked := make([]int64, 0, 5)
			for i := 0; i < 5; i++ {
				acked = append(acked, commitRow(t, le, int64(i)))
			}

			plan.Arm(wal.CrashPointShipBefore, 1)
			err := func() (err error) {
				defer func() { err = sim.RecoverCrash(recover(), err) }()
				txn := le.Begin(engine.IsolationDefault)
				if _, ierr := txn.Insert("accounts", map[string]storage.Value{"bal": int64(99)}); ierr != nil {
					return ierr
				}
				return txn.Commit()
			}()
			if !sim.IsCrash(err) {
				t.Fatalf("commit at armed ship:before returned %v, want crash death", err)
			}
			// The doomed record is durable on the dead leader but was never
			// shipped — and, critically, never acknowledged.
			if f.AppliedLSN() >= le.AppliedLSN() {
				t.Fatalf("follower applied LSN %d reached the unshipped batch at %d", f.AppliedLSN(), le.AppliedLSN())
			}

			l.Close()
			promoted, perr := f.Promote(LeaderConfig{Addr: "127.0.0.1:0", Quorum: Async})
			if perr != nil {
				t.Fatalf("promote: %v", perr)
			}
			defer promoted.Close()
			if promoted.Epoch() != 2 {
				t.Fatalf("promoted epoch = %d, want 2", promoted.Epoch())
			}
			for _, pk := range acked {
				if !hasRow(t, fe, pk) {
					t.Fatalf("acknowledged commit (pk %d) missing on promoted leader", pk)
				}
			}
			// The new leader accepts writes immediately.
			commitRow(t, fe, 123)
		})
	}
}

// TestStaleLeaderEpochRejected: a follower that has seen epoch E refuses a
// stream from a leader still at E-1.
func TestStaleLeaderEpochRejected(t *testing.T) {
	stale := newEngine(t, nil, false)
	fe := newEngine(t, nil, false)
	oldLeader := startLeader(t, stale, LeaderConfig{Quorum: Async, Epoch: 1})

	f := NewFollower(fe, FollowerConfig{LeaderAddr: oldLeader.Addr(), Epoch: 5})
	f.Start()
	defer f.Stop()

	commitRow(t, stale, 1)
	// The follower must never apply anything from the epoch-1 stream: its
	// subscribe carries epoch 5 and the leader refuses the subscriber (or
	// the follower rejects the frames).
	time.Sleep(100 * time.Millisecond)
	if f.AppliedLSN() != 0 {
		t.Fatalf("follower applied LSN %d from a stale leader", f.AppliedLSN())
	}
}
