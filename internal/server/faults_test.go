package server

import (
	"testing"
	"time"

	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
	"adhoctx/internal/wire"
)

// TestReaperSparesInFlightRequest is the reaper/request race regression: a
// request frame whose delivery straddles the idle deadline must not get its
// session reaped and its transaction rolled back under it. The idle clock
// may only cover the wait for a frame's first byte; once any byte has
// arrived the session is in a request, not idle.
func TestReaperSparesInFlightRequest(t *testing.T) {
	srv, _ := newTestServer(t, Config{IdleTimeout: 100 * time.Millisecond})
	nc := dialRaw(t, srv)
	defer nc.Close()

	rawRoundTrip(t, nc, &wire.Request{Op: wire.OpBegin})
	rawRoundTrip(t, nc, &wire.Request{
		Op: wire.OpSelect, Table: "skus", Pred: storage.ByPK(1), Lock: wire.LockForUpdate,
	})

	// Deliver the next request one byte first, then stall past the idle
	// deadline before sending the rest — a slow proxy or a GC-paused
	// client, as the reaper sees it.
	payload, err := wire.AppendRequest(nil, &wire.Request{
		Op: wire.OpUpdate, Table: "skus", Pred: storage.ByPK(1),
		Cols: []string{"qty"}, Vals: []storage.Value{storage.Inc(-1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 0, 4+len(payload))
	frame = append(frame, byte(len(payload)>>24), byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
	frame = append(frame, payload...)

	if _, err := nc.Write(frame[:1]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond) // 2.5× the idle deadline
	if _, err := nc.Write(frame[1:]); err != nil {
		t.Fatal(err)
	}
	raw, err := wire.ReadFrame(nc, nil)
	if err != nil {
		t.Fatalf("straddling request got no response (session reaped?): %v", err)
	}
	var resp wire.Response
	if err := wire.DecodeResponse(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != wire.CodeOK {
		t.Fatalf("straddling update: %v", resp.Err())
	}
	// The transaction must still be live and committable.
	if resp := rawRoundTrip(t, nc, &wire.Request{Op: wire.OpCommit}); resp.Code != wire.CodeOK {
		t.Fatalf("commit after straddling request: %v", resp.Err())
	}
}

// TestReaperStillReapsIdleSessions: the race fix must not have disabled the
// reaper — a session that sends nothing at all still gets reaped.
func TestReaperStillReapsIdleSessions(t *testing.T) {
	srv, reg := newTestServer(t, Config{IdleTimeout: 80 * time.Millisecond})
	nc := dialRaw(t, srv)
	defer nc.Close()
	rawRoundTrip(t, nc, &wire.Request{Op: wire.OpBegin})

	deadline := time.Now().Add(3 * time.Second)
	for reg.Counter("server_sessions_reaped_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The reaped session's conn is dead.
	_ = nc.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := wire.ReadFrame(nc, nil); err == nil {
		t.Fatal("reaped session's connection still serving")
	}
}

// crashTestStack builds an engine + server pair the test controls fully, so
// it can crash, inspect, recover, and restart.
func crashTestStack(t *testing.T, plan *sim.CrashPlan, addr string) (*engine.Engine, *Server) {
	t.Helper()
	eng := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: 2 * time.Second})
	eng.CreateTable(storage.NewSchema("skus",
		storage.Column{Name: "qty", Type: storage.TInt},
	))
	txn := eng.Begin(engine.IsolationDefault)
	if _, err := txn.Insert("skus", map[string]storage.Value{"qty": int64(10)}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, nil, Config{Addr: addr, Crash: plan})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return eng, srv
}

// restartServer recovers the engine and serves it again on the same address.
func restartServer(t *testing.T, eng *engine.Engine, addr string, plan *sim.CrashPlan) *Server {
	t.Helper()
	if err := eng.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	var srv *Server
	var err error
	for i := 0; i < 50; i++ {
		srv = New(eng, nil, Config{Addr: addr, Crash: plan})
		if err = srv.Start(); err == nil {
			t.Cleanup(func() { _ = srv.Close() })
			return srv
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("restart: %v", err)
	return nil
}

// commitExpectingDeath sends one update+commit and requires the connection
// to die at COMMIT without a response frame.
func commitExpectingDeath(t *testing.T, srv *Server, qty int64) {
	t.Helper()
	nc := dialRaw(t, srv)
	defer nc.Close()
	rawRoundTrip(t, nc, &wire.Request{Op: wire.OpBegin})
	rawRoundTrip(t, nc, &wire.Request{
		Op: wire.OpUpdate, Table: "skus", Pred: storage.ByPK(1),
		Cols: []string{"qty"}, Vals: []storage.Value{qty},
	})
	payload, err := wire.AppendRequest(nil, &wire.Request{Op: wire.OpCommit})
	if err != nil {
		t.Fatal(err)
	}
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc, payload); err == nil {
		// Any conn-death error shape is acceptable; a clean response is not.
		if _, err := wire.ReadFrame(nc, nil); err == nil {
			t.Fatal("COMMIT at an armed crash point returned a response")
		}
	}
	select {
	case <-srv.Crashed():
	case <-time.After(5 * time.Second):
		t.Fatal("server did not report the crash")
	}
	_ = srv.Close()
}

// readQty reads skus row 1 directly from the engine.
func readQty(t *testing.T, eng *engine.Engine) int64 {
	t.Helper()
	txn := eng.Begin(engine.IsolationDefault)
	defer func() { _ = txn.Rollback() }()
	row, err := txn.SelectOne("skus", storage.ByPK(1))
	if err != nil {
		t.Fatal(err)
	}
	qty, _ := row.Get(eng.Schema("skus"), "qty").(int64)
	return qty
}

// TestCrashPointWALSemantics pins the two COMMIT crash points to their WAL
// contracts: a kill before the engine commit loses the transaction on
// recovery; a kill after it (the ambiguous-commit window — the client saw
// only a dead connection) preserves it.
func TestCrashPointWALSemantics(t *testing.T) {
	// Phase 1: crash before the engine commit.
	plan := &sim.CrashPlan{}
	plan.Arm(CrashPointCommitBefore, 1)
	eng, srv := crashTestStack(t, plan, "127.0.0.1:0")
	addr := srv.Addr().String()

	commitExpectingDeath(t, srv, 5)
	if got := srv.CrashPoint(); got != CrashPointCommitBefore {
		t.Fatalf("crash point = %q, want %q", got, CrashPointCommitBefore)
	}
	srv2 := restartServer(t, eng, addr, plan)
	if qty := readQty(t, eng); qty != 10 {
		t.Fatalf("pre-commit crash: recovered qty = %d, want 10 (txn must be lost)", qty)
	}

	// Phase 2: crash after the engine commit, before the response.
	plan.Arm(CrashPointCommitAfter, 1)
	commitExpectingDeath(t, srv2, 7)
	if got := srv2.CrashPoint(); got != CrashPointCommitAfter {
		t.Fatalf("crash point = %q, want %q", got, CrashPointCommitAfter)
	}
	restartServer(t, eng, addr, nil)
	if qty := readQty(t, eng); qty != 7 {
		t.Fatalf("post-commit crash: recovered qty = %d, want 7 (txn must survive)", qty)
	}
}

// TestPooledClientRidesThroughCrash: a client.Client with RetryConnLost
// keeps working across a crash/recover/restart cycle without being rebuilt
// — the acceptance criterion's client half, in miniature.
func TestPooledClientRidesThroughCrash(t *testing.T) {
	plan := &sim.CrashPlan{}
	plan.Arm(CrashPointCommitAfter, 2)
	eng, srv := crashTestStack(t, plan, "127.0.0.1:0")
	addr := srv.Addr().String()

	cli := client.New(client.Config{
		Addr: addr, MaxRetries: 30, RetryConnLost: true,
		BackoffBase: time.Millisecond, DialTimeout: time.Second,
	})
	defer cli.Close()

	crashSeen := make(chan struct{})
	go func() {
		<-srv.Crashed()
		_ = srv.Close()
		restartServer(t, eng, addr, nil)
		close(crashSeen)
	}()

	for i := 0; i < 6; i++ {
		err := cli.RunTxn(engine.IsolationDefault, func(txn *client.Txn) error {
			_, err := txn.Update("skus", storage.ByPK(1),
				map[string]storage.Value{"qty": storage.Inc(1)})
			return err
		})
		if err != nil {
			t.Fatalf("txn %d failed across crash: %v", i, err)
		}
	}
	select {
	case <-crashSeen:
	case <-time.After(5 * time.Second):
		t.Fatal("crash point never fired")
	}
	// ≥16: the armed point fired on the 2nd commit, and the ambiguous
	// commit may have been retried (duplicating one increment) — what must
	// hold is that no increment was lost.
	if qty := readQty(t, eng); qty < 16 {
		t.Fatalf("qty = %d, want ≥ 16 (increments lost across crash)", qty)
	}
}
