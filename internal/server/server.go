// Package server is the networked serving layer over engine.Engine and
// kv.Store: a TCP accept loop speaking the internal/wire protocol, with
// per-connection sessions, admission control, idle-session reaping, and
// graceful drain.
//
// The paper studies ad hoc transactions in client/server web stacks; this
// package supplies the server half of that substrate. Each connection is one
// session — the analogue of a database connection — owning at most one open
// transaction and one KV connection, so connection lifecycle events map
// one-to-one onto transaction lifecycle events: a client that dies
// mid-transaction (the §3.4.2 crash points, seen from the server) has its
// transaction rolled back and its locks released the moment the connection
// breaks or goes idle past the reap deadline. Locks never outlive their
// session.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/kv"
	"adhoctx/internal/obs"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
	"adhoctx/internal/wire"
)

// Config tunes the serving layer. The zero value serves on an ephemeral
// loopback port with the defaults below.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// MaxSessions bounds concurrently admitted sessions (default 64).
	MaxSessions int
	// MaxQueued bounds dials waiting for a session slot; a dial beyond the
	// queue is rejected immediately with CodeSaturated (default MaxSessions).
	MaxQueued int
	// QueueWait bounds how long a queued dial waits for a slot before the
	// typed rejection (default 100ms).
	QueueWait time.Duration
	// IdleTimeout is the idle-session reap deadline: a session that sends no
	// request for this long is closed and its open transaction rolled back,
	// so an abandoned client never leaks locks (default 30s).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 10s). Statement
	// execution itself is bounded by the engine's lock timeout, matching the
	// databases the paper studies.
	WriteTimeout time.Duration
	// DrainTimeout bounds Close's graceful drain before remaining
	// connections are forced closed (default 5s).
	DrainTimeout time.Duration
	// WrapConn, when non-nil, wraps every accepted connection before the
	// handshake — the seam internal/faults uses to inject connection
	// drops, torn frames, and latency spikes on the server side.
	WrapConn func(net.Conn) net.Conn
	// Writable, when non-nil, gates write transactions: a follower node
	// returns false and a writable BEGIN is rejected with CodeNotLeader,
	// the response Msg carrying LeaderHint so routers re-route without a
	// topology fetch. nil means always writable (standalone node).
	Writable func() bool
	// LeaderHint, when non-nil, names the current leader's client address
	// for CodeNotLeader rejections.
	LeaderHint func() string
	// PartitionIndex and PartitionCount pin the static hash partition this
	// node owns. PartitionCount 0 disables the guard; otherwise statements
	// addressing a primary key hashing outside the partition are rejected
	// with CodeWrongPartition before touching the engine.
	PartitionIndex uint32
	PartitionCount uint32
	// AppliedLSN, when non-nil, is the node's replication frontier. A
	// read-only BEGIN carrying MinLSN above it is rejected with
	// CodeStaleRead, so bounded-staleness reads never travel backwards in
	// time relative to what the client has already seen committed.
	AppliedLSN func() uint64
	// Crash, when non-nil, arms server-side crash points (§3.4.2). A fired
	// point models the whole server process dying mid-request: the engine
	// loses its volatile state (locks evaporate, live transactions start
	// failing, the WAL survives), every connection and the listener are
	// cut, and — crucially — no rollback or release code runs for the
	// session that hit the point. Crashed() signals the death so a
	// supervisor can Recover() the engine and start a replacement server.
	Crash *sim.CrashPlan
}

// Crash point names checked when Config.Crash is armed.
const (
	// CrashPointCommitBefore fires after the client's COMMIT frame is
	// decoded but before the engine commit: the WAL never sees the
	// transaction, so recovery must lose it.
	CrashPointCommitBefore = "server/commit:before"
	// CrashPointCommitAfter fires after the engine commit (WAL appended)
	// but before the response frame: the client sees a dead connection
	// with the outcome unknown — the paper's ambiguous-commit window —
	// while recovery must preserve the transaction.
	CrashPointCommitAfter = "server/commit:after"
)

func (c *Config) withDefaults() Config {
	out := *c
	if out.Addr == "" {
		out.Addr = "127.0.0.1:0"
	}
	if out.MaxSessions <= 0 {
		out.MaxSessions = 64
	}
	if out.MaxQueued <= 0 {
		out.MaxQueued = out.MaxSessions
	}
	if out.QueueWait <= 0 {
		out.QueueWait = 100 * time.Millisecond
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 30 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 10 * time.Second
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 5 * time.Second
	}
	return out
}

// serverMetrics is the resolved instrument set (see WireObs).
type serverMetrics struct {
	active   *obs.Gauge
	queued   *obs.Gauge
	accepted *obs.Counter
	rejected *obs.Counter
	reaped   *obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	perOp    map[wire.Op]*obs.Histogram
	errors   *obs.Counter
}

// Server accepts wire-protocol connections over an Engine and a Store.
// A Server must not be reused after Close.
type Server struct {
	cfg   Config
	eng   *engine.Engine
	store *kv.Store

	ln       net.Listener
	slots    chan struct{} // admission semaphore, capacity MaxSessions
	queued   atomic.Int64
	draining chan struct{}
	done     sync.WaitGroup // accept loop + sessions

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closeOnce sync.Once
	closeErr  error

	crashOnce  sync.Once
	crashedCh  chan struct{}
	crashPoint atomic.Pointer[string]

	om atomic.Pointer[serverMetrics]
}

// New creates an unstarted server. store may be nil when only engine
// commands are served (KV requests then fail with a typed error).
func New(eng *engine.Engine, store *kv.Store, cfg Config) *Server {
	c := cfg.withDefaults()
	return &Server{
		cfg:       c,
		eng:       eng,
		store:     store,
		slots:     make(chan struct{}, c.MaxSessions),
		draining:  make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		crashedCh: make(chan struct{}),
	}
}

// Crashed is closed when an armed crash point fired and the server died
// abruptly. A supervisor should then Close (to reap session goroutines),
// Recover the engine, and start a replacement server; CrashPoint names the
// point that fired.
func (s *Server) Crashed() <-chan struct{} { return s.crashedCh }

// CrashPoint returns the name of the crash point that killed the server, or
// "" if it has not crashed.
func (s *Server) CrashPoint() string {
	if p := s.crashPoint.Load(); p != nil {
		return *p
	}
	return ""
}

// crash kills the server the way a process death would: engine volatile
// state is wiped (WAL survives), the listener and every connection are cut
// with no drain and no per-session rollback. Sessions die on their next
// read/write; the one that hit the point has already dropped its
// transaction handle without rolling back.
func (s *Server) crash(ce *sim.CrashError) {
	s.crashOnce.Do(func() {
		point := ce.Point
		s.crashPoint.Store(&point)
		s.eng.Crash()
		if s.ln != nil {
			_ = s.ln.Close()
		}
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		close(s.crashedCh)
	})
}

// WireObs attaches the server to reg: session admission gauges and counters,
// per-operation wire latency histograms, and bytes in/out. A nil registry is
// a no-op; the disabled path costs one atomic pointer load per use.
func (s *Server) WireObs(reg *obs.Registry) {
	if reg == nil {
		s.om.Store(nil)
		return
	}
	m := &serverMetrics{
		active:   reg.Gauge("server_sessions_active"),
		queued:   reg.Gauge("server_sessions_queued"),
		accepted: reg.Counter("server_sessions_accepted_total"),
		rejected: reg.Counter("server_sessions_rejected_total"),
		reaped:   reg.Counter("server_sessions_reaped_total"),
		bytesIn:  reg.Counter("server_bytes_read_total"),
		bytesOut: reg.Counter("server_bytes_written_total"),
		perOp:    make(map[wire.Op]*obs.Histogram, len(wire.Ops)),
		errors:   reg.Counter("server_request_errors_total"),
	}
	for _, op := range wire.Ops {
		m.perOp[op] = reg.Histogram(fmt.Sprintf("wire_request_seconds{op=%q}", op.String()))
	}
	s.om.Store(m)
}

// Start begins listening and accepting sessions.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.done.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close gracefully drains the server: the listener closes immediately (new
// dials are refused), sessions with an open transaction may finish it, and
// idle sessions are closed. Connections still alive after DrainTimeout are
// forced closed. Close returns an error if sessions survive even that (a
// session can be pinned inside an unbounded engine lock wait). Close is
// idempotent; later calls return the first call's result.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.drain() })
	return s.closeErr
}

func (s *Server) drain() error {
	close(s.draining)
	if s.ln != nil {
		_ = s.ln.Close()
	}
	if waitTimeout(&s.done, s.cfg.DrainTimeout) {
		return nil
	}
	// Grace expired: force-close the stragglers. Their session loops roll
	// back any open transaction on the way out.
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	if waitTimeout(&s.done, s.cfg.DrainTimeout) {
		return nil
	}
	return errors.New("server: sessions still running after drain timeout")
}

func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}

func (s *Server) acceptLoop() {
	defer s.done.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.cfg.WrapConn != nil {
			conn = s.cfg.WrapConn(conn)
		}
		s.done.Add(1)
		go s.admit(conn)
	}
}

// track registers conn for force-close at drain; untrack forgets it.
func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// admit runs the handshake and the admission controller for one connection,
// then hands it to a session. Saturation is reported with a typed error
// frame rather than a silent close, so clients can back off and retry
// instead of treating it as a network failure.
func (s *Server) admit(conn net.Conn) {
	defer s.done.Done()
	s.track(conn)
	defer s.untrack(conn)
	m := s.om.Load()

	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.ServerHandshake(conn); err != nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})

	// Fast path: a free slot.
	select {
	case s.slots <- struct{}{}:
	default:
		// Queue, bounded: beyond MaxQueued dials waiting, reject instantly.
		if s.queued.Add(1) > int64(s.cfg.MaxQueued) {
			s.queued.Add(-1)
			s.reject(conn, m, "admission queue full")
			return
		}
		// The gauge is driven with Add alongside the atomic counter: a
		// Load/Set pair here would race with concurrent admits and leave the
		// gauge stale.
		if m != nil {
			m.queued.Add(1)
		}
		timer := time.NewTimer(s.cfg.QueueWait)
		select {
		case s.slots <- struct{}{}:
			timer.Stop()
			s.queued.Add(-1)
			if m != nil {
				m.queued.Add(-1)
			}
		case <-timer.C:
			s.queued.Add(-1)
			if m != nil {
				m.queued.Add(-1)
			}
			s.reject(conn, m, "no session slot within queue wait")
			return
		case <-s.draining:
			timer.Stop()
			s.queued.Add(-1)
			if m != nil {
				m.queued.Add(-1)
			}
			s.reject(conn, m, "server draining")
			return
		}
	}

	if m != nil {
		m.accepted.Inc()
		m.active.Add(1)
	}
	sess := &session{srv: s, conn: conn, m: m}
	sess.run()
	<-s.slots
	if m != nil {
		m.active.Add(-1)
	}
}

// reject sends a typed CodeSaturated frame and closes the connection.
func (s *Server) reject(conn net.Conn, m *serverMetrics, msg string) {
	if m != nil {
		m.rejected.Inc()
	}
	payload, err := wire.AppendResponse(nil, &wire.Response{Code: wire.CodeSaturated, Msg: msg})
	if err == nil {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		_ = wire.WriteFrame(conn, payload)
	}
	_ = conn.Close()
}

// session is one admitted connection: the server-side analogue of a database
// session, owning at most one open transaction and one KV connection. All
// session state is confined to the session goroutine.
type session struct {
	srv  *Server
	conn net.Conn
	m    *serverMetrics

	txn      *engine.Txn
	readOnly bool
	kvc      *kv.Conn

	readBuf  []byte
	writeBuf []byte
	req      wire.Request
	resp     wire.Response
}

// run serves requests until the client goes away, idles out, or the drain
// completes. The open transaction (if any) is rolled back on every exit
// path: the whole point of sessions being first-class is that locks cannot
// leak past them.
func (s *session) run() {
	defer s.rollbackOpen(false)
	// A fired crash point panics with *sim.CrashError. The "process" died:
	// drop the transaction handle WITHOUT rolling back (the deferred
	// rollback above must not run release code a dead server couldn't) and
	// tear the whole server down. Anything else re-panics.
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		ce, ok := rec.(*sim.CrashError)
		if !ok {
			panic(rec)
		}
		s.txn = nil
		s.srv.crash(ce)
	}()
	for {
		payload, idle, err := s.readFrame()
		if err != nil {
			if idle && s.m != nil {
				s.m.reaped.Inc()
			}
			_ = s.conn.Close()
			return
		}

		start := time.Now()
		op := s.handle(payload)
		if s.m != nil {
			if h := s.m.perOp[op]; h != nil {
				h.Since(start)
			}
			if s.resp.Code != wire.CodeOK {
				s.m.errors.Inc()
			}
		}

		out, err := wire.AppendResponse(s.writeBuf[:0], &s.resp)
		if err != nil {
			// Response encoding failures are programming errors; drop the
			// session rather than desync the stream.
			_ = s.conn.Close()
			return
		}
		s.writeBuf = out
		_ = s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
		if err := wire.WriteFrame(s.countingWriter(), out); err != nil {
			_ = s.conn.Close()
			return
		}

		// Drain: once no transaction is open, the session ends. A session
		// mid-transaction keeps going — its client gets to finish, new work
		// is refused at BEGIN.
		select {
		case <-s.srv.draining:
			if s.txn == nil {
				_ = s.conn.Close()
				return
			}
		default:
		}
	}
}

// readFrame reads one request frame in two stages: the wait for the frame's
// first byte runs under the idle-reap deadline, and once any byte has
// arrived the rest of the frame runs under the WriteTimeout-scale bound. A
// request already in flight when the reap deadline passes is therefore
// served, not reaped — the reaper only ever fires between requests, so it
// can never roll a transaction back under a statement the client has
// started sending. idle reports a true idle-reap (first-byte deadline);
// timeouts mid-frame are a stalled or torn request, not idleness.
func (s *session) readFrame() (payload []byte, idle bool, err error) {
	r := s.countingReader()
	var hdr [4]byte
	// Idle reap doubles as dead-client detection: a killed client's FIN
	// or RST fails the read immediately; a zombie client trips the
	// deadline. Either way the caller's rollback releases its locks.
	_ = s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.IdleTimeout))
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, isTimeout(err), err
	}
	// A frame is in flight: it gets its own (request-scale) deadline.
	_ = s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, false, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > wire.MaxFrame {
		return nil, false, wire.ErrFrameTooLarge
	}
	if cap(s.readBuf) < int(n) {
		s.readBuf = make([]byte, n)
	}
	buf := s.readBuf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

// rollbackOpen rolls back the session's open transaction, if any. reaped is
// informational only (metrics are counted at the read site).
func (s *session) rollbackOpen(_ bool) {
	if s.txn != nil && !s.txn.Done() {
		_ = s.txn.Rollback()
	}
	s.txn = nil
}

// fail stages a typed error response.
func (s *session) fail(code wire.Code, msg string) {
	s.resp.Reset()
	s.resp.Code = code
	s.resp.Msg = msg
}

// failErr stages the typed response for an engine (or other) error.
func (s *session) failErr(err error) {
	var we *wire.Error
	if errors.As(err, &we) {
		s.fail(we.Code, we.Msg)
		return
	}
	s.fail(wire.CodeOf(err), err.Error())
}

// handle decodes and executes one request, staging s.resp. It returns the
// operation for metric labelling (OpInvalid for undecodable frames).
func (s *session) handle(payload []byte) wire.Op {
	if err := wire.DecodeRequest(payload, &s.req); err != nil {
		s.failErr(err)
		return wire.OpInvalid
	}
	r := &s.req
	s.resp.Reset()
	switch r.Op {
	case wire.OpPing:
		// staged OK response suffices
	case wire.OpBegin:
		s.begin(r)
	case wire.OpCommit:
		if s.txn == nil {
			s.fail(wire.CodeNoTxn, "COMMIT with no open transaction")
			break
		}
		t := s.txn
		s.srv.cfg.Crash.Check(CrashPointCommitBefore)
		err := t.Commit()
		s.txn = nil
		if err != nil {
			s.failErr(err)
			break
		}
		s.resp.LSN = t.CommitLSN()
		s.srv.cfg.Crash.Check(CrashPointCommitAfter)
	case wire.OpRollback:
		if s.txn == nil {
			s.fail(wire.CodeNoTxn, "ROLLBACK with no open transaction")
			break
		}
		err := s.txn.Rollback()
		s.txn = nil
		if err != nil {
			s.failErr(err)
		}
	case wire.OpSelect:
		if !s.partitionOK(r) {
			break
		}
		s.selectRows(r)
	case wire.OpInsert:
		if !s.writableTxn() || !s.partitionOK(r) {
			break
		}
		s.withTxn(r, func(t *engine.Txn) error {
			vals := colValMap(r)
			pk, err := t.Insert(r.Table, vals)
			s.resp.N = pk
			return err
		})
	case wire.OpUpdate:
		if !s.writableTxn() || !s.partitionOK(r) {
			break
		}
		s.withTxn(r, func(t *engine.Txn) error {
			n, err := t.Update(r.Table, r.Pred, colValMap(r))
			s.resp.N = int64(n)
			return err
		})
	case wire.OpDelete:
		if !s.writableTxn() || !s.partitionOK(r) {
			break
		}
		s.withTxn(r, func(t *engine.Txn) error {
			n, err := t.Delete(r.Table, r.Pred)
			s.resp.N = int64(n)
			return err
		})
	case wire.OpKV:
		s.kvCommand(r)
	default:
		s.fail(wire.CodeBadRequest, "unknown op")
	}
	// An aborted transaction (deadlock victim, serialization failure) is
	// finished engine-side; drop the session's handle so the client's
	// follow-up ROLLBACK gets a clean CodeNoTxn rather than CodeTxnDone.
	if s.txn != nil && s.txn.Done() {
		s.txn = nil
	}
	return r.Op
}

func (s *session) begin(r *wire.Request) {
	if s.txn != nil {
		s.fail(wire.CodeTxnOpen, "BEGIN while a transaction is open")
		return
	}
	select {
	case <-s.srv.draining:
		s.fail(wire.CodeShutdown, "server draining; no new transactions")
		return
	default:
	}
	iso := engine.Isolation(r.Iso)
	if iso < engine.IsolationDefault || iso > engine.Serializable {
		s.fail(wire.CodeBadRequest, "unknown isolation level")
		return
	}
	if r.ReadOnly {
		if fn := s.srv.cfg.AppliedLSN; fn != nil {
			if applied := fn(); r.MinLSN > applied {
				s.fail(wire.CodeStaleRead, fmt.Sprintf("applied LSN %d behind requested %d", applied, r.MinLSN))
				return
			}
		}
	} else if s.srv.cfg.Writable != nil && !s.srv.cfg.Writable() {
		s.fail(wire.CodeNotLeader, s.leaderHint())
		return
	}
	s.readOnly = r.ReadOnly
	mode := s.eng().Config().Mode
	if r.OCC {
		mode = engine.ModeOCC
	}
	s.txn = s.eng().BeginMode(mode, iso)
}

func (s *session) eng() *engine.Engine { return s.srv.eng }

// leaderHint resolves the leader address carried in CodeNotLeader responses.
func (s *session) leaderHint() string {
	if s.srv.cfg.LeaderHint != nil {
		return s.srv.cfg.LeaderHint()
	}
	return ""
}

// writableTxn stages a CodeNotLeader rejection and reports false when the
// session's transaction is read-only: writes that reach a follower's read
// session bounce back to the router with the leader's address.
func (s *session) writableTxn() bool {
	if s.readOnly && s.txn != nil {
		s.fail(wire.CodeNotLeader, s.leaderHint())
		return false
	}
	return true
}

// partitionOK stages a CodeWrongPartition rejection and reports false when
// the request addresses a primary key this node's partition does not own.
// Requests with no extractable key (full scans, engine-assigned inserts)
// pass: each node stores only its own partition's rows anyway.
func (s *session) partitionOK(r *wire.Request) bool {
	count := s.srv.cfg.PartitionCount
	if count == 0 {
		return true
	}
	pk, ok := pkTarget(r)
	if !ok {
		return true
	}
	if p := wire.PartitionOf(pk, count); p != s.srv.cfg.PartitionIndex {
		s.fail(wire.CodeWrongPartition, fmt.Sprintf("pk %d belongs to partition %d", pk, p))
		return false
	}
	return true
}

// pkTarget extracts the primary key a statement addresses, if any.
func pkTarget(r *wire.Request) (int64, bool) {
	if r.Op == wire.OpInsert {
		for i, c := range r.Cols {
			if c == storage.PKColumn && i < len(r.Vals) {
				pk, ok := r.Vals[i].(int64)
				return pk, ok
			}
		}
		return 0, false
	}
	if v, ok := storage.EqCond(r.Pred, storage.PKColumn); ok {
		pk, ok2 := v.(int64)
		return pk, ok2
	}
	return 0, false
}

// withTxn runs a statement against the open transaction.
func (s *session) withTxn(_ *wire.Request, fn func(*engine.Txn) error) {
	if s.txn == nil {
		s.fail(wire.CodeNoTxn, "statement with no open transaction")
		return
	}
	if err := fn(s.txn); err != nil {
		s.failErr(err)
	}
}

func (s *session) selectRows(r *wire.Request) {
	s.withTxn(r, func(t *engine.Txn) error {
		var opts []engine.SelectOpt
		switch r.Lock {
		case wire.LockForUpdate:
			opts = append(opts, engine.ForUpdate)
		case wire.LockForShare:
			opts = append(opts, engine.ForShare)
		case wire.LockNone:
		default:
			return &wire.Error{Code: wire.CodeBadRequest, Msg: "unknown lock mode"}
		}
		rows, err := t.Select(r.Table, r.Pred, opts...)
		if err != nil {
			return err
		}
		schema := s.eng().Schema(r.Table)
		if schema == nil {
			return fmt.Errorf("%w: %q", engine.ErrNoTable, r.Table)
		}
		for _, col := range schema.Columns {
			s.resp.Cols = append(s.resp.Cols, col.Name)
		}
		for _, row := range rows {
			s.resp.Rows = append(s.resp.Rows, row)
		}
		return nil
	})
}

func colValMap(r *wire.Request) map[string]any {
	vals := make(map[string]any, len(r.Cols))
	for i, c := range r.Cols {
		vals[c] = r.Vals[i]
	}
	return vals
}

// kvCommand executes one KV sub-command on the session's KV connection.
func (s *session) kvCommand(r *wire.Request) {
	if s.srv.store == nil {
		s.fail(wire.CodeBadRequest, "server has no KV store")
		return
	}
	if s.kvc == nil {
		s.kvc = s.srv.store.Conn()
	}
	c := s.kvc
	switch r.Cmd {
	case wire.KVGet:
		s.resp.Str, s.resp.Bool = c.Get(r.Key)
	case wire.KVExists:
		s.resp.Bool = c.Exists(r.Key)
	case wire.KVSet:
		c.Set(r.Key, r.SVal)
	case wire.KVSetPX:
		c.SetPX(r.Key, r.SVal, r.TTL)
	case wire.KVSetNX:
		s.resp.Bool = c.SetNX(r.Key, r.SVal)
	case wire.KVSetNXPX:
		s.resp.Bool = c.SetNXPX(r.Key, r.SVal, r.TTL)
	case wire.KVDel:
		s.resp.Bool = c.Del(r.Key)
	case wire.KVExpire:
		s.resp.Bool = c.Expire(r.Key, r.TTL)
	case wire.KVTTL:
		s.resp.TTL, s.resp.Bool = c.TTL(r.Key)
	case wire.KVSAdd:
		c.SAdd(r.Key, r.SVal)
	case wire.KVSRem:
		c.SRem(r.Key, r.SVal)
	case wire.KVSIsMember:
		s.resp.Bool = c.SIsMember(r.Key, r.SVal)
	case wire.KVSMembers:
		s.resp.Strs = append(s.resp.Strs, c.SMembers(r.Key)...)
	case wire.KVWatch:
		if err := c.Watch(r.Keys...); err != nil {
			s.fail(wire.CodeBadRequest, err.Error())
		}
	case wire.KVUnwatch:
		c.Unwatch()
	case wire.KVMulti:
		if err := c.Multi(); err != nil {
			s.fail(wire.CodeBadRequest, err.Error())
		}
	case wire.KVDiscard:
		c.Discard()
	case wire.KVExec:
		ok, err := c.Exec()
		if err != nil {
			s.fail(wire.CodeBadRequest, err.Error())
			return
		}
		s.resp.Bool = ok
	default:
		s.fail(wire.CodeBadRequest, "unknown kv command")
	}
}

// ---- byte accounting ----

// countingReader/Writer wrap the conn so wire framing feeds the byte
// counters without a second buffer copy. With obs disabled they return the
// conn unwrapped.
func (s *session) countingReader() io.Reader {
	if s.m == nil {
		return s.conn
	}
	return &countReader{r: s.conn, c: s.m.bytesIn}
}

func (s *session) countingWriter() io.Writer {
	if s.m == nil {
		return s.conn
	}
	return &countWriter{w: s.conn, c: s.m.bytesOut}
}

type countReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}

type countWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
