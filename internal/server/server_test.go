package server

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/kv"
	"adhoctx/internal/obs"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
	"adhoctx/internal/wire"
)

// newTestServer starts a server over a fresh engine (with a seeded "skus"
// table) and KV store, returning it with its registry. Callers own Close.
func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	return newTestServerLockTimeout(t, cfg, 5*time.Second)
}

func newTestServerLockTimeout(t *testing.T, cfg Config, lockTimeout time.Duration) (*Server, *obs.Registry) {
	t.Helper()
	eng := engine.New(engine.Config{
		Dialect: engine.Postgres, LockTimeout: lockTimeout,
	})
	eng.CreateTable(storage.NewSchema("skus",
		storage.Column{Name: "name", Type: storage.TString},
		storage.Column{Name: "qty", Type: storage.TInt},
	))
	txn := eng.Begin(engine.IsolationDefault)
	if _, err := txn.Insert("skus", map[string]storage.Value{"name": "widget", "qty": int64(10)}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	store := kv.NewStore(sim.NewFakeClock(time.Unix(0, 0)), sim.Latency{})

	reg := obs.NewRegistry()
	srv := New(eng, store, cfg)
	srv.WireObs(reg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, reg
}

func newTestClient(t *testing.T, srv *Server, cfg client.Config) *client.Client {
	t.Helper()
	cfg.Addr = srv.Addr().String()
	c := client.New(cfg)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestEndToEndTransaction(t *testing.T) {
	srv, reg := newTestServer(t, Config{})
	c := newTestClient(t, srv, client.Config{})

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// Read-modify-write through the wire: the paper's canonical ad hoc
	// critical section, here under a real transaction.
	err := c.RunTxn(engine.RepeatableRead, func(txn *client.Txn) error {
		rows, err := txn.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockForUpdate)
		if err != nil {
			return err
		}
		if len(rows.Rows) != 1 {
			t.Fatalf("rows = %d, want 1", len(rows.Rows))
		}
		n, err := txn.Update("skus", storage.Eq{Col: "id", Val: int64(1)},
			map[string]storage.Value{"qty": storage.Inc(-1)})
		if err != nil {
			return err
		}
		if n != 1 {
			t.Fatalf("updated %d rows, want 1", n)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunTxn: %v", err)
	}

	// Verify the decrement committed, and that column order survives.
	txn, err := c.Begin(engine.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := txn.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockNone)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Cols; len(got) != 3 || got[0] != "id" || got[1] != "name" || got[2] != "qty" {
		t.Fatalf("cols = %v", got)
	}
	if qty := rows.Rows[0][2]; qty != int64(9) {
		t.Fatalf("qty = %v, want 9", qty)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}

	if v := reg.Counter("server_sessions_accepted_total").Value(); v == 0 {
		t.Error("no sessions counted as accepted")
	}
	if v := reg.Counter("server_bytes_read_total").Value(); v == 0 {
		t.Error("no bytes counted in")
	}
	snap := reg.Histogram(`wire_request_seconds{op="select"}`).Snapshot()
	if snap.Count == 0 {
		t.Error("no select latency recorded")
	}
}

// TestTypedErrorsCrossTheWire pins the retry contract end to end: engine
// sentinels survive server → wire → client and still satisfy errors.Is.
func TestTypedErrorsCrossTheWire(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	c := newTestClient(t, srv, client.Config{})

	txn, err := c.Begin(engine.IsolationDefault)
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Rollback()
	if _, err := txn.Select("no_such_table", storage.All{}, wire.LockNone); !errors.Is(err, engine.ErrNoTable) {
		t.Fatalf("missing table err = %v, want ErrNoTable", err)
	}
	// Duplicate BEGIN on the same session is a protocol error, not an
	// engine error.
	if _, err := txn.Select("skus", storage.All{}, wire.LockNone); err != nil {
		t.Fatalf("session unusable after typed error: %v", err)
	}
}

func TestKVOverTheWire(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	c := newTestClient(t, srv, client.Config{})

	k, err := c.KV()
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()

	if won, err := k.SetNXPX("lock:1", "me", time.Minute); err != nil || !won {
		t.Fatalf("SetNXPX = %v, %v", won, err)
	}
	if won, err := k.SetNX("lock:1", "them"); err != nil || won {
		t.Fatalf("second SetNX = %v, %v", won, err)
	}

	// The full optimistic protocol, including a server-side misuse error.
	if _, err := k.Exec(); err == nil || !strings.Contains(err.Error(), "EXEC without MULTI") {
		t.Fatalf("Exec without Multi err = %v", err)
	}
	if err := k.Watch("lock:2"); err != nil {
		t.Fatal(err)
	}
	if err := k.Multi(); err != nil {
		t.Fatal(err)
	}
	if err := k.Set("lock:2", "me"); err != nil {
		t.Fatal(err)
	}
	if ok, err := k.Exec(); err != nil || !ok {
		t.Fatalf("Exec = %v, %v", ok, err)
	}
	if v, ok, err := k.Get("lock:2"); err != nil || !ok || v != "me" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
}

// TestLockTimeoutKeepsTxnUsable pins the MySQL-style statement-failure
// semantics over the wire: a lock wait timeout fails the statement, but the
// transaction — and the connection it is pinned to — stay live, so the
// caller can retry the statement or roll back. Regression: the client used
// to finish the handle and pool the connection while the server session
// still held an open transaction and its row locks, so the next Begin that
// checked out that connection got CodeTxnOpen.
func TestLockTimeoutKeepsTxnUsable(t *testing.T) {
	srv, _ := newTestServerLockTimeout(t, Config{}, 100*time.Millisecond)
	c := newTestClient(t, srv, client.Config{PoolSize: 1})

	holder := dialRaw(t, srv)
	defer holder.Close()
	rawRoundTrip(t, holder, &wire.Request{Op: wire.OpBegin})
	rawRoundTrip(t, holder, &wire.Request{
		Op: wire.OpSelect, Table: "skus", Lock: wire.LockForUpdate,
		Pred: storage.Eq{Col: "id", Val: int64(1)},
	})

	txn, err := c.Begin(engine.IsolationDefault)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockForUpdate); !errors.Is(err, engine.ErrLockTimeout) {
		t.Fatalf("blocked select err = %v, want ErrLockTimeout", err)
	}
	if txn.Done() {
		t.Fatal("lock timeout finished the txn handle; the transaction must stay usable")
	}

	// Release the blocker: the same transaction retries the statement.
	rawRoundTrip(t, holder, &wire.Request{Op: wire.OpRollback})
	if _, err := txn.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockForUpdate); err != nil {
		t.Fatalf("retry on same txn after timeout: %v", err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatalf("rollback after timeout: %v", err)
	}

	// The connection must return to the pool clean: with PoolSize 1 the next
	// Begin reuses it, and a leaked server-side transaction would surface
	// here as a non-retryable CodeTxnOpen.
	txn2, err := c.Begin(engine.IsolationDefault)
	if err != nil {
		t.Fatalf("begin on pooled conn after timeout: %v", err)
	}
	if err := txn2.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestKVCloseDiscardsSessionState: a KV conversation abandoned mid
// WATCH/MULTI (any error path that skips Exec/Discard) must not leak that
// server-session state to the next KVConn handed the same pooled
// connection — a stale watch set fails unrelated EXECs, and a leftover
// MULTI queue turns the next Multi into a nested-MULTI error.
func TestKVCloseDiscardsSessionState(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	c := newTestClient(t, srv, client.Config{PoolSize: 1})

	k1, err := c.KV()
	if err != nil {
		t.Fatal(err)
	}
	if err := k1.Watch("w"); err != nil {
		t.Fatal(err)
	}
	if err := k1.Multi(); err != nil {
		t.Fatal(err)
	}
	if err := k1.Set("x", "stale"); err != nil {
		t.Fatal(err)
	}
	k1.Close() // abandoned mid-conversation

	k2, err := c.KV()
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	// Bump the key k1 watched; a leaked watch set would fail the EXEC below.
	if err := k2.Set("w", "bumped"); err != nil {
		t.Fatal(err)
	}
	// A leaked MULTI queue would make this a nested-MULTI error.
	if err := k2.Multi(); err != nil {
		t.Fatalf("Multi on pooled conn after abandoned conversation: %v", err)
	}
	if err := k2.Set("x", "fresh"); err != nil {
		t.Fatal(err)
	}
	if ok, err := k2.Exec(); err != nil || !ok {
		t.Fatalf("Exec = %v, %v; leaked watch set or queue", ok, err)
	}
	if v, _, err := k2.Get("x"); err != nil || v != "fresh" {
		t.Fatalf("x = %q, %v; want %q", v, err, "fresh")
	}
}

// TestAdmissionControl fills the only session slot and verifies the typed
// CodeSaturated rejection — fast, explicit, and marked retryable, unlike a
// silent connection drop.
func TestAdmissionControl(t *testing.T) {
	srv, reg := newTestServer(t, Config{
		MaxSessions: 1, MaxQueued: 1, QueueWait: 50 * time.Millisecond,
	})

	// Occupy the slot with an open transaction on a raw connection.
	holder := dialRaw(t, srv)
	defer holder.Close()
	rawRoundTrip(t, holder, &wire.Request{Op: wire.OpBegin})

	// The next dial handshakes, queues, times out, and is told why.
	probe := dialRaw(t, srv)
	defer probe.Close()
	var resp wire.Response
	payload, err := wire.ReadFrame(probe, nil)
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if err := wire.DecodeResponse(payload, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != wire.CodeSaturated {
		t.Fatalf("rejection code = %v, want saturated", resp.Code)
	}
	if !wire.IsRetryable(resp.Err()) {
		t.Fatal("saturation must be retryable")
	}
	if v := reg.Counter("server_sessions_rejected_total").Value(); v != 1 {
		t.Errorf("rejected counter = %d, want 1", v)
	}
	if v := reg.Gauge("server_sessions_queued").Value(); v != 0 {
		t.Errorf("queued gauge = %d after rejection, want 0", v)
	}

	// Releasing the slot lets a new session in: the client's
	// retry-with-backoff path succeeds end to end.
	done := make(chan error, 1)
	c := newTestClient(t, srv, client.Config{
		MaxRetries: 20, BackoffBase: 5 * time.Millisecond, PoolSize: 1,
	})
	go func() {
		done <- c.RunTxn(engine.IsolationDefault, func(txn *client.Txn) error {
			_, err := txn.Select("skus", storage.All{}, wire.LockNone)
			return err
		})
	}()
	time.Sleep(20 * time.Millisecond)
	rawRoundTrip(t, holder, &wire.Request{Op: wire.OpRollback})
	_ = holder.Close()
	if err := <-done; err != nil {
		t.Fatalf("retry after saturation: %v", err)
	}
}

// TestGracefulDrain is the shutdown satellite: an in-flight transaction
// completes during Close while new dials are refused.
func TestGracefulDrain(t *testing.T) {
	srv, _ := newTestServer(t, Config{DrainTimeout: 2 * time.Second})
	c := newTestClient(t, srv, client.Config{})

	txn, err := c.Begin(engine.IsolationDefault)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Update("skus", storage.Eq{Col: "id", Val: int64(1)},
		map[string]storage.Value{"qty": storage.Inc(5)}); err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// New dials must fail fast while the drain is in progress.
	deadline := time.Now().Add(time.Second)
	for {
		nc, err := net.DialTimeout("tcp", srv.Addr().String(), 200*time.Millisecond)
		if err != nil {
			break
		}
		// The listener may accept dials that raced Close; they must still be
		// refused at the protocol level (handshake or first read fails).
		_ = nc.SetDeadline(time.Now().Add(200 * time.Millisecond))
		if err := wire.ClientHandshake(nc); err != nil {
			_ = nc.Close()
			break
		}
		_ = nc.Close()
		if time.Now().After(deadline) {
			t.Fatal("new connections still accepted during drain")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight transaction finishes cleanly.
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit during drain: %v", err)
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not return after in-flight txn committed")
	}
}

// TestIdleReapReleasesLocks is the lock-leak satellite: a session that goes
// silent mid-transaction is reaped, and its row locks become acquirable by a
// fresh session. This is the server-side fix for the paper's §4.1.1 failure
// mode, where an abandoned ad hoc lock blocks everyone else.
func TestIdleReapReleasesLocks(t *testing.T) {
	srv, reg := newTestServer(t, Config{IdleTimeout: 100 * time.Millisecond})

	// Session A locks row 1 and goes silent (client stops sending but keeps
	// the socket open — a zombie, not a crash).
	zombie := dialRaw(t, srv)
	defer zombie.Close()
	rawRoundTrip(t, zombie, &wire.Request{Op: wire.OpBegin})
	resp := rawRoundTrip(t, zombie, &wire.Request{
		Op: wire.OpSelect, Table: "skus", Lock: wire.LockForUpdate,
		Pred: storage.Eq{Col: "id", Val: int64(1)},
	})
	if resp.Code != wire.CodeOK {
		t.Fatalf("zombie lock acquire: %v", resp.Code)
	}

	// A fresh session can lock the row once the reaper has rolled A back.
	// Engine lock timeout is 5s, reap deadline 100ms: success here proves
	// the reap released the lock rather than the wait just timing out.
	c := newTestClient(t, srv, client.Config{})
	start := time.Now()
	err := c.RunTxn(engine.IsolationDefault, func(txn *client.Txn) error {
		_, err := txn.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockForUpdate)
		return err
	})
	if err != nil {
		t.Fatalf("lock after reap: %v", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("lock acquired only after %v — reap did not release it", waited)
	}
	if v := reg.Counter("server_sessions_reaped_total").Value(); v == 0 {
		t.Error("reap not counted")
	}
}

// TestDeadClientReleasesLocks covers the harder crash: the client process
// dies and its socket closes mid-transaction. The session's next read fails
// immediately and the rollback frees the locks without waiting for the idle
// deadline.
func TestDeadClientReleasesLocks(t *testing.T) {
	srv, _ := newTestServer(t, Config{IdleTimeout: 30 * time.Second})

	dying := dialRaw(t, srv)
	rawRoundTrip(t, dying, &wire.Request{Op: wire.OpBegin})
	rawRoundTrip(t, dying, &wire.Request{
		Op: wire.OpSelect, Table: "skus", Lock: wire.LockForUpdate,
		Pred: storage.Eq{Col: "id", Val: int64(1)},
	})
	_ = dying.Close() // the "crash"

	c := newTestClient(t, srv, client.Config{})
	start := time.Now()
	err := c.RunTxn(engine.IsolationDefault, func(txn *client.Txn) error {
		_, err := txn.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockForUpdate)
		return err
	})
	if err != nil {
		t.Fatalf("lock after client death: %v", err)
	}
	// IdleTimeout is 30s; acquiring in well under that proves the EOF path,
	// not the reaper, released the lock.
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("lock acquired only after %v", waited)
	}
}

// ---- raw wire helpers (for sessions the pooled client can't model:
// zombies, crashes, admission probes) ----

func dialRaw(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.ClientHandshake(nc); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	_ = nc.SetDeadline(time.Time{})
	return nc
}

func rawRoundTrip(t *testing.T, nc net.Conn, req *wire.Request) *wire.Response {
	t.Helper()
	payload, err := wire.AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := wire.ReadFrame(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.DecodeResponse(raw, &resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

// TestOCCOverTheWire pins the optimistic execution mode end to end: an OCC
// BEGIN flag crosses the wire, reads take no locks server-side, a conflicting
// pessimistic commit inside the window surfaces as a retryable
// CodeOCCConflict that unwraps to engine.ErrOCCConflict, and the client's
// RunTxnWith retry loop absorbs it.
func TestOCCOverTheWire(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	c := newTestClient(t, srv, client.Config{})

	// Open an optimistic transaction and take a snapshot read of row 1.
	occ, err := c.BeginWith(engine.RepeatableRead, client.BeginOpts{OCC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer occ.Rollback()
	if _, err := occ.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockNone); err != nil {
		t.Fatal(err)
	}

	// A pessimistic writer commits to the same row inside the window.
	if err := c.RunTxn(engine.RepeatableRead, func(txn *client.Txn) error {
		_, err := txn.Update("skus", storage.Eq{Col: "id", Val: int64(1)},
			map[string]storage.Value{"qty": storage.Inc(-1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// The optimistic writer's validation must now fail with the typed,
	// retryable conflict — after crossing the wire.
	if _, err := occ.Update("skus", storage.Eq{Col: "id", Val: int64(1)},
		map[string]storage.Value{"qty": storage.Inc(-1)}); err != nil {
		t.Fatal(err)
	}
	err = occ.Commit()
	if !errors.Is(err, engine.ErrOCCConflict) {
		t.Fatalf("commit err = %v, want ErrOCCConflict", err)
	}
	if !wire.IsRetryable(err) {
		t.Fatalf("OCC conflict not retryable across the wire: %v", err)
	}

	// RunTxnWith in OCC mode retries the conflict away.
	if err := c.RunTxnWith(engine.RepeatableRead, client.BeginOpts{OCC: true}, func(txn *client.Txn) error {
		if _, err := txn.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockNone); err != nil {
			return err
		}
		_, err := txn.Update("skus", storage.Eq{Col: "id", Val: int64(1)},
			map[string]storage.Value{"qty": storage.Inc(-1)})
		return err
	}); err != nil {
		t.Fatalf("RunTxnWith(OCC): %v", err)
	}

	// Both the pessimistic and the optimistic decrement landed.
	var qty storage.Value
	if err := c.RunTxn(engine.ReadCommitted, func(txn *client.Txn) error {
		rows, err := txn.Select("skus", storage.Eq{Col: "id", Val: int64(1)}, wire.LockNone)
		if err != nil {
			return err
		}
		qty = rows.Rows[0][2]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if qty != int64(8) {
		t.Fatalf("qty = %v, want 8", qty)
	}
}
