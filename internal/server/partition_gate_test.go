package server

import (
	"errors"
	"testing"
	"time"

	"adhoctx/internal/client"
	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
	"adhoctx/internal/wire"
)

// TestPartitionGateAgreesWithFixture holds the server-side ownership gate
// (session.partitionOK) to the same pinned table the wire hash and the proxy
// router are tested against: for every fixture case, a node configured as
// the case's owning partition must accept the key, and a node configured as
// any other partition must reject it with CodeWrongPartition. A drift
// between the gate and the router would mis-place rows silently; the shared
// fixture makes it a test failure instead.
func TestPartitionGateAgreesWithFixture(t *testing.T) {
	// One serving node per (parts, index) combination the fixture needs.
	type key struct {
		parts uint32
		index uint32
	}
	nodes := map[key]*client.Client{}
	nodeFor := func(parts, index uint32) *client.Client {
		k := key{parts, index}
		if c, ok := nodes[k]; ok {
			return c
		}
		eng := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: 2 * time.Second})
		eng.CreateTable(storage.NewSchema("accounts",
			storage.Column{Name: "bal", Type: storage.TInt},
		))
		srv := New(eng, nil, Config{PartitionIndex: index, PartitionCount: parts})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		c := client.New(client.Config{Addr: srv.Addr().String(), PoolSize: 1, DialTimeout: time.Second})
		t.Cleanup(func() { _ = c.Close() })
		nodes[k] = c
		return c
	}

	put := func(c *client.Client, pk int64) error {
		return c.RunTxn(engine.IsolationDefault, func(txn *client.Txn) error {
			_, err := txn.Insert("accounts", map[string]storage.Value{
				storage.PKColumn: pk, "bal": int64(1),
			})
			return err
		})
	}

	for _, c := range wire.PartitionFixture() {
		if c.Parts == 0 {
			continue // PartitionCount 0 disables the gate entirely.
		}
		// The owning node accepts the key.
		if err := put(nodeFor(c.Parts, c.Want), c.PK); err != nil {
			t.Errorf("pk %d rejected by its own partition %d/%d: %v", c.PK, c.Want, c.Parts, err)
		}
		if c.Parts == 1 {
			continue // No other partition exists to reject from.
		}
		// Any other node rejects it, typed.
		other := (c.Want + 1) % c.Parts
		err := put(nodeFor(c.Parts, other), c.PK)
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeWrongPartition {
			t.Errorf("pk %d accepted by partition %d/%d (owner %d): err = %v, want CodeWrongPartition",
				c.PK, other, c.Parts, c.Want, err)
		}
	}
}
