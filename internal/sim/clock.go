// Package sim provides the simulation kit shared by every substrate:
// injectable clocks, latency profiles modelling network round trips and disk
// flushes, seeded randomness helpers, and crash-point injection.
//
// The paper's evaluation (§5) attributes the order-of-magnitude latency
// differences between lock primitives to "disk I/Os and network round trips".
// Reproducing that shape on a laptop requires making those costs explicit and
// injectable rather than relying on real hardware.
package sim

import (
	"sync"
	"time"

	"adhoctx/internal/sched"
)

// Clock abstracts time so tests of TTL leases, lock expiry, and crash
// recovery can run deterministically with a FakeClock while benchmarks use
// the RealClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d. An auto-advance FakeClock returns immediately
	// after advancing bookkeeping; a manual FakeClock blocks until Advance
	// catches up; the RealClock actually sleeps.
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// FakeClock is a deterministic clock, safe for concurrent use, with two
// modes:
//
//   - Auto-advance (NewFakeClock): Sleep advances the clock by the slept
//     duration and returns immediately, so code that sleeps "observes" time
//     passing without wall-clock delay.
//   - Manual (NewManualFakeClock): Sleep blocks until Advance (or Set) moves
//     the clock past the sleeper's deadline, so a test drives virtual time
//     explicitly from another goroutine.
//
// In both modes, sleeping is a scheduling seam: under a sched controller,
// auto-advance sleeps park at a Point after advancing (so other tasks can
// run "during" the sleep, at the post-sleep instant — this is how TTL-lease
// expiry races become explorable schedules), and manual sleeps become
// cooperative waits on the advancing clock.
type FakeClock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	manual bool
	// sleepers counts goroutines currently blocked in a manual Sleep;
	// tests use Sleepers to know a waiter has registered before advancing.
	sleepers int
}

// NewFakeClock returns an auto-advance FakeClock starting at the given
// instant.
func NewFakeClock(start time.Time) *FakeClock {
	c := &FakeClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// NewManualFakeClock returns a FakeClock whose sleepers block until another
// goroutine calls Advance or Set past their deadlines.
func NewManualFakeClock(start time.Time) *FakeClock {
	c := NewFakeClock(start)
	c.manual = true
	return c
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock. Auto-advance mode moves the clock itself; manual
// mode blocks until the clock reaches now+d. The deadline is computed under
// the same mutex Advance broadcasts under, so a concurrent Advance can
// never slip between deadline capture and wait registration (no lost
// wakeups).
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if !c.manual {
		c.Advance(d)
		sched.Point("clock/sleep")
		return
	}
	c.mu.Lock()
	deadline := c.now.Add(d)
	c.mu.Unlock()
	// Under a sched controller, block cooperatively so the controller keeps
	// scheduling other tasks (one of which must advance the clock).
	if sched.Wait("clock/sleep", func() bool { return !c.Now().Before(deadline) }) {
		return
	}
	c.mu.Lock()
	c.sleepers++
	for c.now.Before(deadline) {
		c.cond.Wait()
	}
	c.sleepers--
	c.mu.Unlock()
}

// Advance moves the clock forward by d and wakes any manual sleepers whose
// deadlines have passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	if c.cond != nil { // zero-value clocks have no sleepers to wake
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Set moves the clock to the given instant (never backwards in manual mode
// semantics terms: sleepers re-check their own deadlines, so a backwards
// Set simply keeps them blocked).
func (c *FakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	if c.cond != nil {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Sleepers reports how many goroutines are blocked in a manual Sleep.
func (c *FakeClock) Sleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sleepers
}
