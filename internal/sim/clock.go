// Package sim provides the simulation kit shared by every substrate:
// injectable clocks, latency profiles modelling network round trips and disk
// flushes, seeded randomness helpers, and crash-point injection.
//
// The paper's evaluation (§5) attributes the order-of-magnitude latency
// differences between lock primitives to "disk I/Os and network round trips".
// Reproducing that shape on a laptop requires making those costs explicit and
// injectable rather than relying on real hardware.
package sim

import (
	"sync"
	"time"
)

// Clock abstracts time so tests of TTL leases, lock expiry, and crash
// recovery can run deterministically with a FakeClock while benchmarks use
// the RealClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d. A FakeClock returns immediately after advancing
	// bookkeeping; the RealClock actually sleeps.
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// FakeClock is a manually advanced clock. It is safe for concurrent use.
// Sleep advances the clock by the slept duration, so single-threaded code
// that sleeps "observes" time passing without wall-clock delay.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock starting at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the fake time.
func (c *FakeClock) Sleep(d time.Duration) {
	if d > 0 {
		c.Advance(d)
	}
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set moves the clock to the given instant.
func (c *FakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}
