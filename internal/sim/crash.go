package sim

import (
	"fmt"
	"sync"

	"adhoctx/internal/sched"
)

// CrashError is returned by code that hit an armed crash point. It models an
// application-server crash (§3.4.2): the goroutine abandons its work without
// running any release/rollback code, exactly like a process that died.
type CrashError struct {
	Point string
}

// Error implements error.
func (e *CrashError) Error() string { return fmt.Sprintf("sim: crashed at %q", e.Point) }

// IsCrash reports whether err is a CrashError.
func IsCrash(err error) bool {
	_, ok := err.(*CrashError)
	return ok
}

// CrashPlan arms named crash points. Application code calls Check(point) at
// the places a real server could die (between a write and its rollback
// handler, between two storage systems, ...). When a point is armed, Check
// panics with a *CrashError which the request boundary converts into an
// abandoned request.
//
// The zero value has no armed points and Check is cheap.
type CrashPlan struct {
	mu      sync.Mutex
	armed   map[string]int // point -> remaining hits before firing
	explore map[string]bool
	events  []string
}

// Arm schedules the named point to fire on its nth visit (1 = next visit).
func (p *CrashPlan) Arm(point string, nth int) {
	if nth < 1 {
		nth = 1
	}
	p.mu.Lock()
	if p.armed == nil {
		p.armed = make(map[string]int)
	}
	p.armed[point] = nth
	p.mu.Unlock()
}

// Disarm clears the named point.
func (p *CrashPlan) Disarm(point string) {
	p.mu.Lock()
	delete(p.armed, point)
	p.mu.Unlock()
}

// ExploreCrashes marks the named crash points as schedule-explored: under a
// sched controller, every visit becomes a branch decision — survive or die —
// so a DFS explorer enumerates crash placement instead of a test hard-coding
// Arm(point, nth). Without a controller the marks are inert (the Choose
// seam returns "survive").
func (p *CrashPlan) ExploreCrashes(points ...string) {
	p.mu.Lock()
	if p.explore == nil {
		p.explore = make(map[string]bool)
	}
	for _, pt := range points {
		p.explore[pt] = true
	}
	p.mu.Unlock()
}

// Check fires an armed crash point by panicking with *CrashError. Points
// marked by ExploreCrashes instead ask the installed schedule controller
// whether to die here.
func (p *CrashPlan) Check(point string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	fire := false
	if n, ok := p.armed[point]; ok {
		n--
		if n > 0 {
			p.armed[point] = n
		} else {
			delete(p.armed, point)
			fire = true
		}
	}
	explored := !fire && p.explore[point]
	if fire {
		p.events = append(p.events, point)
	}
	p.mu.Unlock()
	if fire {
		panic(&CrashError{Point: point})
	}
	// The branch decision must happen outside p.mu: choosing parks the
	// goroutine until the controller schedules it.
	if explored && sched.Choose("crash/"+point, 2) == 1 {
		p.mu.Lock()
		p.events = append(p.events, point)
		p.mu.Unlock()
		panic(&CrashError{Point: point})
	}
}

// Fired returns the points that have fired, in order.
func (p *CrashPlan) Fired() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.events))
	copy(out, p.events)
	return out
}

// Recover converts a *CrashError panic into an error and re-panics on
// anything else. Use as:
//
//	defer func() { err = sim.RecoverCrash(recover(), err) }()
func RecoverCrash(rec any, err error) error {
	if rec == nil {
		return err
	}
	if ce, ok := rec.(*CrashError); ok {
		return ce
	}
	panic(rec)
}
