package sim

import (
	"sync"
	"testing"
	"time"
)

// TestManualClockAdvanceRacesSleep is the lost-wakeup regression: many
// sleepers with staggered deadlines block while another goroutine advances
// the clock in small concurrent increments. A sleeper whose deadline is
// captured outside the Advance mutex (or woken by Signal instead of
// Broadcast) would sleep forever; run with -race to also catch unlocked
// reads of now.
func TestManualClockAdvanceRacesSleep(t *testing.T) {
	start := time.Unix(0, 0)
	c := NewManualFakeClock(start)

	const sleepers = 16
	var wg sync.WaitGroup
	for i := 1; i <= sleepers; i++ {
		wg.Add(1)
		d := time.Duration(i) * 10 * time.Millisecond
		go func() {
			defer wg.Done()
			c.Sleep(d)
			if got := c.Now(); got.Before(start.Add(d)) {
				t.Errorf("woke early: now=%v, deadline=%v", got, start.Add(d))
			}
		}()
	}

	// Advance concurrently from several goroutines in increments smaller
	// than the shortest deadline, racing sleepers that are still
	// registering. Total advance comfortably covers every deadline.
	var adv sync.WaitGroup
	for g := 0; g < 4; g++ {
		adv.Add(1)
		go func() {
			defer adv.Done()
			for i := 0; i < 50; i++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	adv.Wait()
	if c.Now().Before(start.Add(200 * time.Millisecond)) {
		t.Fatalf("advances lost: now=%v", c.Now())
	}

	// Deadlines are relative to each sleeper's registration time, so late
	// registrants may still need more virtual time — keep driving the clock
	// until everyone wakes. A lost wakeup means a sleeper NEVER wakes no
	// matter how far the clock moves, which the deadline below catches.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("lost wakeup: %d sleepers still blocked after clock passed every deadline", c.Sleepers())
		case <-time.After(time.Millisecond):
			c.Advance(10 * time.Millisecond)
			continue
		}
		break
	}
	if n := c.Sleepers(); n != 0 {
		t.Fatalf("sleeper accounting leaked: %d", n)
	}
}

// TestManualClockSleepBlocksUntilAdvance pins the blocking contract: a
// manual sleeper must not return before the clock reaches its deadline.
func TestManualClockSleepBlocksUntilAdvance(t *testing.T) {
	start := time.Unix(100, 0)
	c := NewManualFakeClock(start)

	woke := make(chan time.Time, 1)
	go func() {
		c.Sleep(50 * time.Millisecond)
		woke <- c.Now()
	}()

	// Wait for the sleeper to register, then advance short of the deadline.
	for i := 0; c.Sleepers() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	c.Advance(49 * time.Millisecond)
	select {
	case at := <-woke:
		t.Fatalf("sleeper woke before deadline at %v", at)
	case <-time.After(20 * time.Millisecond):
	}
	c.Advance(time.Millisecond)
	select {
	case at := <-woke:
		if at.Before(start.Add(50 * time.Millisecond)) {
			t.Fatalf("woke with clock at %v", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sleeper never woke after deadline")
	}
}

// TestAutoClockSleepStillAdvances pins auto-advance compatibility: the mode
// the whole test suite already relies on is unchanged.
func TestAutoClockSleepStillAdvances(t *testing.T) {
	start := time.Unix(0, 0)
	c := NewFakeClock(start)
	c.Sleep(3 * time.Second)
	if got := c.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("auto-advance broken: %v", got)
	}
	c.Sleep(-time.Second) // negative sleeps are no-ops
	if got := c.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("negative sleep moved the clock: %v", got)
	}
}
