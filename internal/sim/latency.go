package sim

import "time"

// Latency models the fixed costs the paper identifies as decisive for lock
// primitive performance (§5.1): network round trips to a remote store and
// disk flushes for durability.
//
// A zero Latency makes every cost free, which is what unit tests use. The
// benchmark harness installs a profile calibrated in EXPERIMENTS.md.
type Latency struct {
	// Clock used to charge costs. Nil means RealClock.
	Clock Clock
	// RTT is one network round trip between the application server and a
	// remote store (RDBMS or KV). The paper's testbed used a 1 Gbit/s LAN.
	RTT time.Duration
	// Fsync is the cost of flushing the write-ahead log for durability.
	// It dominates the DB-table lock in Figure 2.
	Fsync time.Duration
}

// clock returns the configured clock or the real one.
func (l Latency) clock() Clock {
	if l.Clock != nil {
		return l.Clock
	}
	return RealClock{}
}

// ChargeRTT blocks for n network round trips.
func (l Latency) ChargeRTT(n int) {
	if l.RTT > 0 && n > 0 {
		l.clock().Sleep(time.Duration(n) * l.RTT)
	}
}

// ChargeFsync blocks for one log flush.
func (l Latency) ChargeFsync() {
	if l.Fsync > 0 {
		l.clock().Sleep(l.Fsync)
	}
}

// LAN returns a profile resembling the paper's testbed: a 1 Gbit/s network
// with ~0.1 ms round trips and a commodity disk with ~2 ms flushes. Absolute
// values are not the point; the ratios are (see EXPERIMENTS.md).
func LAN() Latency {
	return Latency{RTT: 100 * time.Microsecond, Fsync: 2 * time.Millisecond}
}
