package sim

import (
	"errors"
	"testing"
	"time"
)

func TestFakeClockAdvance(t *testing.T) {
	start := time.Date(2022, 6, 12, 0, 0, 0, 0, time.UTC)
	c := NewFakeClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", c.Now(), start)
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("after Advance, elapsed = %v, want 3s", got)
	}
	c.Sleep(2 * time.Second)
	if got := c.Now().Sub(start); got != 5*time.Second {
		t.Fatalf("after Sleep, elapsed = %v, want 5s", got)
	}
	c.Set(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Set did not reset clock")
	}
}

func TestFakeClockNegativeSleepIgnored(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	c.Sleep(-time.Second)
	if !c.Now().Equal(time.Unix(0, 0)) {
		t.Fatalf("negative sleep moved the clock")
	}
}

func TestLatencyChargesFakeClock(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	l := Latency{Clock: c, RTT: time.Millisecond, Fsync: 5 * time.Millisecond}
	l.ChargeRTT(3)
	l.ChargeFsync()
	if got := c.Now().Sub(time.Unix(0, 0)); got != 8*time.Millisecond {
		t.Fatalf("charged %v, want 8ms", got)
	}
}

func TestZeroLatencyIsFree(t *testing.T) {
	var l Latency
	done := make(chan struct{})
	go func() {
		l.ChargeRTT(1000)
		l.ChargeFsync()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("zero latency blocked")
	}
}

func TestLANProfileRatios(t *testing.T) {
	l := LAN()
	if l.RTT <= 0 || l.Fsync <= 0 {
		t.Fatalf("LAN profile has non-positive costs: %+v", l)
	}
	if l.Fsync < 10*l.RTT {
		t.Fatalf("fsync (%v) should dominate RTT (%v) by an order of magnitude", l.Fsync, l.RTT)
	}
}

func TestCrashPlanFiresOnNthVisit(t *testing.T) {
	var p CrashPlan
	p.Arm("after-payment-write", 2)

	visit := func() (err error) {
		defer func() { err = RecoverCrash(recover(), err) }()
		p.Check("after-payment-write")
		return nil
	}

	if err := visit(); err != nil {
		t.Fatalf("first visit crashed early: %v", err)
	}
	err := visit()
	if err == nil || !IsCrash(err) {
		t.Fatalf("second visit err = %v, want crash", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Point != "after-payment-write" {
		t.Fatalf("crash error = %#v", err)
	}
	if err := visit(); err != nil {
		t.Fatalf("crash point should disarm after firing, got %v", err)
	}
	if got := p.Fired(); len(got) != 1 || got[0] != "after-payment-write" {
		t.Fatalf("Fired() = %v", got)
	}
}

func TestCrashPlanDisarm(t *testing.T) {
	var p CrashPlan
	p.Arm("x", 1)
	p.Disarm("x")
	p.Check("x") // must not panic
}

func TestNilCrashPlanCheck(t *testing.T) {
	var p *CrashPlan
	p.Check("anything") // must not panic
}

func TestRecoverCrashRepanicsOnForeignPanic(t *testing.T) {
	defer func() {
		if rec := recover(); rec != "boom" {
			t.Fatalf("recovered %v, want original panic", rec)
		}
	}()
	func() {
		defer func() { _ = RecoverCrash(recover(), nil) }()
		panic("boom")
	}()
}

func TestFakeClockConcurrentUse(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				c.Advance(time.Millisecond)
				_ = c.Now()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Now().Sub(time.Unix(0, 0)); got != 800*time.Millisecond {
		t.Fatalf("elapsed = %v, want 800ms", got)
	}
}
