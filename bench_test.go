package adhoctx_test

// Repository-level benchmarks: one per evaluation artifact of the paper.
//
//	BenchmarkFigure2LockPrimitives — Figure 2 (lock/unlock latency per impl)
//	BenchmarkFigure3Granularity    — Figure 3 (API throughput, AHT vs DBT,
//	                                 with and without contention)
//	BenchmarkFigure4Rollback       — Figure 4 (shrink-image latency per
//	                                 rollback strategy)
//	BenchmarkTableRegeneration     — Tables 2–5 and 7 from the catalog
//
// Run: go test -bench=. -benchmem
// The simulated latency profile is the EXPERIMENTS.md calibration; absolute
// numbers track the profile, shapes track the paper.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/apps/discourse"
	"adhoctx/internal/catalog"
	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/experiments"
	"adhoctx/internal/kv"
	"adhoctx/internal/obs"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
)

// BenchmarkFigure2LockPrimitives times one uncontended lock/unlock pair per
// iteration for each of the seven implementations.
func BenchmarkFigure2LockPrimitives(b *testing.B) {
	rtt := 100 * time.Microsecond
	lat := sim.Latency{RTT: rtt}

	store := kv.NewStore(nil, lat)
	sfuEng := engine.New(engine.Config{Dialect: engine.Postgres, Net: lat, LockTimeout: 30 * time.Second})
	sfuEng.CreateTable(benchSchema("lock_rows"))
	sfu := &locks.SFULocker{Eng: sfuEng, Table: "lock_rows"}
	if err := sfu.EnsureRow(1); err != nil {
		b.Fatal(err)
	}
	dbEng := engine.New(engine.Config{
		Dialect: engine.MySQL, Net: lat,
		WALFsync: sim.Latency{Fsync: 2 * time.Millisecond}, LockTimeout: 30 * time.Second,
	})
	locks.SetupDBLockTable(dbEng)

	cases := []struct {
		name   string
		locker core.Locker
		key    string
	}{
		{"SYNC", locks.NewSyncLocker(), "k"},
		{"MEM", locks.NewMemLocker(), "k"},
		{"MEM-LRU", locks.NewLRULocker(1024, false), "k"},
		{"KV-SETNX", &locks.SetNXLocker{Store: store, Token: "b", TTL: time.Minute}, "k"},
		{"KV-MULTI", &locks.MultiLocker{Store: store, Token: "b", TTL: time.Minute}, "k"},
		{"SFU", sfu, "1"},
		{"DB", &locks.DBLocker{Eng: dbEng, BootID: "bench", Owner: "b"}, "k"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel, err := c.locker.Acquire(c.key)
				if err != nil {
					b.Fatal(err)
				}
				if err := rel(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3Granularity drives each (API, mode, contention) cell with
// concurrent closed-loop clients and reports req/s.
func BenchmarkFigure3Granularity(b *testing.B) {
	const clients = 6
	cfg := experiments.Figure3Config{
		Clients: clients,
		RTT:     150 * time.Microsecond,
	}
	for _, api := range []string{"RMW", "AA", "CBC", "PBC"} {
		for _, contended := range []bool{true, false} {
			for _, mode := range []string{"AHT", "DBT"} {
				name := api + "/" + mode + "/uncontended"
				if contended {
					name = api + "/" + mode + "/contended"
				}
				b.Run(name, func(b *testing.B) {
					w, err := experiments.NewWorkload(api, mode, contended, cfg)
					if err != nil {
						b.Fatal(err)
					}
					var next atomic.Int64
					b.ResetTimer()
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						wg.Add(1)
						go func(c int) {
							defer wg.Done()
							for {
								i := next.Add(1)
								if i > int64(b.N) {
									return
								}
								if err := w.Do(c, int(i)); err != nil && !engine.IsRetryable(err) {
									b.Error(err)
									return
								}
							}
						}(c)
					}
					wg.Wait()
					b.StopTimer()
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
					st := w.Engine().Stats().Snapshot()
					b.ReportMetric(float64(st.Deadlocks), "deadlocks")
					b.ReportMetric(float64(st.SerializationErr), "serialization-failures")
				})
			}
		}
	}
}

// BenchmarkFigure4Rollback times one shrink-image invocation per iteration
// for each rollback strategy, with and without conflicting editors.
func BenchmarkFigure4Rollback(b *testing.B) {
	cfg := experiments.Figure4Config{
		Invocations:     1,
		PostsPerImage:   6,
		Editors:         2,
		ImageProcessing: 15 * time.Millisecond,
		EditProcessing:  2 * time.Millisecond,
		EditorThink:     20 * time.Millisecond,
		RTT:             100 * time.Microsecond,
	}
	modes := []discourse.RollbackMode{
		discourse.DBTSerializable, discourse.DBTWeak, discourse.Manual, discourse.Repair,
	}
	for _, contended := range []bool{true, false} {
		for _, mode := range modes {
			name := mode.String() + "/uncontended"
			if contended {
				name = mode.String() + "/contended"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Figure4Cell(mode, contended, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkObsOverhead measures the cost of the observability wiring on the
// engine's hottest loop — a single-row read-modify-write transaction with no
// simulated network latency, so the instrumentation is the largest possible
// fraction of the work. Compare Disabled vs Enabled: the acceptance bar is
// Enabled staying within 2x of Disabled (in practice it is a few percent,
// since the disabled path is one atomic pointer load per hook).
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry) {
		eng := engine.New(engine.Config{Dialect: engine.MySQL})
		eng.CreateTable(storage.NewSchema("accounts",
			storage.Column{Name: "balance", Type: storage.TInt},
		))
		eng.WireObs(reg)
		var id int64
		err := eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			var err error
			id, err = t.Insert("accounts", map[string]storage.Value{"balance": int64(0)})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		schema := eng.Schema("accounts")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
				row, err := t.SelectOne("accounts", storage.ByPK(id), engine.ForUpdate)
				if err != nil {
					return err
				}
				_, err = t.Update("accounts", storage.ByPK(id), map[string]storage.Value{
					"balance": row.Get(schema, "balance").(int64) + 1,
				})
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Txn/Disabled", func(b *testing.B) { run(b, nil) })
	b.Run("Txn/Enabled", func(b *testing.B) { run(b, obs.NewRegistry()) })

	// The Figure 2 lock-primitive path: MEM lock/unlock through core.WithLock
	// (the in-memory primitive is the only one fast enough for wiring cost to
	// show; the KV/SFU/DB primitives are dominated by simulated round trips).
	runLock := func(b *testing.B, reg *obs.Registry) {
		core.WireObs(reg)
		defer core.WireObs(nil)
		locker := locks.NewMemLocker()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := core.WithLock(locker, "k", func() error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Lock/Disabled", func(b *testing.B) { runLock(b, nil) })
	b.Run("Lock/Enabled", func(b *testing.B) { runLock(b, obs.NewRegistry()) })
}

// BenchmarkTableRegeneration regenerates every study table from the catalog.
func BenchmarkTableRegeneration(b *testing.B) {
	renders := map[string]func() string{
		"Table2":   catalog.RenderTable2,
		"Table3":   catalog.RenderTable3,
		"Table4":   catalog.RenderTable4,
		"Table5":   catalog.RenderTable5,
		"Table7":   catalog.RenderTable7,
		"Findings": catalog.RenderFindings,
	}
	for name, render := range renders {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(render()) == 0 {
					b.Fatal("empty render")
				}
			}
		})
	}
}

func benchSchema(table string) *storage.Schema { return storage.NewSchema(table) }
