module adhoctx

go 1.22
