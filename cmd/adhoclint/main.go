// Command adhoclint is the development-support tooling of §6, in two modes.
//
// By default it is the detector demo: it records execution histories of
// instrumented ad hoc transactions (engine tracer + tapped locks) and runs
// the analyzer's detectors for the §4 issue classes over them, showing each
// buggy pattern being caught and its fixed variant coming back clean.
//
// With -fix it is a fixer: for each buggy target it finds the violating
// schedule, replays it once by ID with provenance attribution, classifies
// the bug, emits the rewrite (AHT→DBT or corrected AHT), and re-proves the
// repaired program by exhaustive exploration:
//
//	adhoclint -fix all                                # every buggy variant + litmus pair
//	adhoclint -fix smoke                              # CI subset (also: -smoke)
//	adhoclint -fix saleor-capture/mem+read-before-lock
//	adhoclint -fix seat-booking                       # whole spec family
//	adhoclint -fix broadleaf-dblock/buggy             # one litmus pair
//
// Exit status: 0 when every repair re-proves clean, 1 when a pipeline step
// fails, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/analyzer"
	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry: parses args, dispatches, returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adhoclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fix := fs.String("fix", "", "repair target: variant, spec, litmus pair, 'all', or 'smoke'")
	smoke := fs.Bool("smoke", false, "shorthand for -fix smoke (the CI subset)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "unexpected arguments %v\n", fs.Args())
		return 2
	}
	switch {
	case *smoke:
		if *fix != "" && *fix != "smoke" {
			fmt.Fprintln(stderr, "-smoke conflicts with -fix "+*fix)
			return 2
		}
		return doFix("smoke", stdout, stderr)
	case *fix != "":
		return doFix(*fix, stdout, stderr)
	}
	demo(stdout)
	return 0
}

// demo is the original detector walkthrough.
func demo(w io.Writer) {
	scenarios := []struct {
		name string
		run  func(buggy bool) []analyzer.Finding
	}{
		{"read-before-lock (Discourse edit-post, §4.1.1)", scenarioReadBeforeLock},
		{"non-atomic validate-and-commit (Discourse MiniSql, §4.1.2)", scenarioNonAtomicValidate},
		{"uncoordinated conflicting handler (Spree JSON API, §4.2)", scenarioUncoordinated},
	}
	for _, s := range scenarios {
		fmt.Fprintf(w, "== %s ==\n", s.name)
		fmt.Fprintln(w, "buggy variant:")
		report(w, s.run(true))
		fmt.Fprintln(w, "fixed variant:")
		report(w, s.run(false))
		fmt.Fprintln(w)
	}
}

func report(w io.Writer, findings []analyzer.Finding) {
	if len(findings) == 0 {
		fmt.Fprintln(w, "  clean — no findings")
		return
	}
	for _, f := range findings {
		fmt.Fprintf(w, "  %s\n", f)
	}
}

func newEngine() *engine.Engine {
	e := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	e.CreateTable(storage.NewSchema("posts",
		storage.Column{Name: "content", Type: storage.TString},
		storage.Column{Name: "ver", Type: storage.TInt},
	))
	return e
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// scenarioReadBeforeLock replays the edit-post RMW with the initial read
// outside (buggy) or inside (fixed) the post lock.
func scenarioReadBeforeLock(buggy bool) []analyzer.Finding {
	e := newEngine()
	seed(e, "original")
	h := analyzer.NewHistory()
	e.SetTracer(h) // installed after seeding: fixtures are not traffic

	const unit = "edit-post#1"
	locker := h.TapLocker(locks.NewMemLocker(), unit)

	read := func() {
		must(e.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			t.SetTag(unit)
			_, err := t.SelectOne("posts", storage.ByPK(1))
			return err
		}))
	}
	write := func() {
		must(e.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			t.SetTag(unit)
			_, err := t.Update("posts", storage.ByPK(1), map[string]storage.Value{"content": "edited"})
			return err
		}))
	}

	if buggy {
		read() // read escapes the critical section
		must(core.WithLock(locker, "post:1", func() error { write(); return nil }))
	} else {
		must(core.WithLock(locker, "post:1", func() error { read(); write(); return nil }))
	}
	return analyzer.Lint(h.Items())
}

// scenarioNonAtomicValidate replays the version check escaping the
// transaction that applies the update.
func scenarioNonAtomicValidate(buggy bool) []analyzer.Finding {
	e := newEngine()
	seed(e, "v1")
	h := analyzer.NewHistory()
	e.SetTracer(h)

	const unit = "reviewable-update#1"
	if buggy {
		// Validate in one transaction...
		var versionOK bool
		var validateTxn uint64
		must(e.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			t.SetTag(unit)
			validateTxn = t.ID()
			row, err := t.SelectOne("posts", storage.ByPK(1))
			if err != nil {
				return err
			}
			versionOK = row.Get(e.Schema("posts"), "ver") == int64(1)
			return nil
		}))
		h.Validate(unit, validateTxn, "posts", 1, versionOK)
		// ...and write in another.
		must(e.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			t.SetTag(unit)
			_, err := t.Update("posts", storage.ByPK(1), map[string]storage.Value{"ver": int64(2)})
			return err
		}))
	} else {
		must(e.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			t.SetTag(unit)
			ok, err := t.UpdateIf("posts", 1, storage.Eq{Col: "ver", Val: int64(1)},
				map[string]storage.Value{"ver": int64(2)})
			if err != nil {
				return err
			}
			h.Validate(unit, t.ID(), "posts", 1, ok)
			return nil
		}))
	}
	return analyzer.Lint(h.Items())
}

// scenarioUncoordinated replays the HTML handler coordinating an order row
// under a lock while the JSON handler writes it bare.
func scenarioUncoordinated(buggy bool) []analyzer.Finding {
	e := newEngine()
	seed(e, "order")
	h := analyzer.NewHistory()
	e.SetTracer(h)

	mem := locks.NewMemLocker()
	handler := func(unit string, withLock bool) {
		op := func() error {
			return e.Run(engine.IsolationDefault, func(t *engine.Txn) error {
				t.SetTag(unit)
				if _, err := t.SelectOne("posts", storage.ByPK(1)); err != nil {
					return err
				}
				_, err := t.Update("posts", storage.ByPK(1), map[string]storage.Value{"content": unit})
				return err
			})
		}
		if withLock {
			must(core.WithLock(h.TapLocker(mem, unit), "order:1", op))
			return
		}
		must(op())
	}
	handler("update-order-html#1", true)
	handler("update-order-json#1", !buggy)
	return analyzer.Lint(h.Items())
}

func seed(e *engine.Engine, content string) {
	must(e.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		_, err := t.Insert("posts", map[string]storage.Value{
			"id": int64(1), "content": content, "ver": int64(1),
		})
		return err
	}))
}
