package main

import (
	"bytes"
	"strings"
	"testing"

	"adhoctx/internal/litmus"
)

// TestExitCodes pins the fix mode's 0/1/2 convention (matching adhocexplore
// and adhocreport): 0 when every repair re-proves clean, 2 for malformed
// invocations or targets with nothing to repair.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"fix-smoke", []string{"-fix", "smoke"}, 0},
		{"smoke-shorthand", []string{"-smoke"}, 0},
		{"fix-one-litmus", []string{"-fix", "broadleaf-dblock/buggy"}, 0},
		{"fix-unknown-target", []string{"-fix", "no-such-spec"}, 2},
		{"fix-unknown-variant", []string{"-fix", "saleor-capture/no-such-mutation"}, 2},
		{"fix-fixed-variant", []string{"-fix", "saleor-capture/mem"}, 2},
		{"fix-fixed-litmus", []string{"-fix", "broadleaf-dblock/fixed"}, 2},
		{"smoke-conflicts-with-fix", []string{"-fix", "all", "-smoke"}, 2},
		{"positional-args", []string{"-fix", "smoke", "extra"}, 2},
		{"bad-flag", []string{"-no-such-flag"}, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, got, tc.want, out.String(), errb.String())
			}
		})
	}
}

// TestFixSmokeOutput: the smoke run must show the whole pipeline — a blame
// of the violating schedule and a complete re-proof — for both the scenario
// variant and the litmus pair.
func TestFixSmokeOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fix", "smoke"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{
		"== fix saleor-capture/mem+read-before-lock ==",
		"blame saleor-capture/mem+read-before-lock",
		"last writer: ",
		"commit step: ",
		"re-proof: ",
		"complete=true",
		"REPAIRED saleor-capture/mem+read-before-lock -> saleor-capture/mem",
		"== fix broadleaf-dblock/buggy ==",
		"replayed ",
		"REPAIRED broadleaf-dblock/buggy -> broadleaf-dblock/fixed",
		"repaired 2 target(s)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}

// TestFixPairRejectsBrokenRepair drives the exit-1 path: a pair whose
// "fixed" program is still the bug must fail the re-proof, so fixPair
// reports failure instead of declaring the target repaired.
func TestFixPairRejectsBrokenRepair(t *testing.T) {
	p, ok := litmus.Find("saleor-capture")
	if !ok {
		t.Fatal("saleor-capture missing")
	}
	p.Fixed = p.Buggy // sabotage: the "repair" is the bug itself
	var out, errb bytes.Buffer
	if fixPair(p, &out, &errb) {
		t.Fatalf("fixPair accepted a still-buggy repair\nstdout: %s", out.String())
	}
	if errb.Len() == 0 {
		t.Error("failed repair produced no diagnostic")
	}
}

// TestDemoStillRuns: the no-flag invocation keeps the detector demo.
func TestDemoStillRuns(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{
		"read-before-lock (Discourse edit-post, §4.1.1)",
		"buggy variant:",
		"clean — no findings",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("demo output missing %q", want)
		}
	}
}

// TestResolveFixAll: 'all' covers every buggy scenario variant plus every
// litmus pair — the same universe the acceptance test proves.
func TestResolveFixAll(t *testing.T) {
	jobs, err := resolveFix("all")
	if err != nil {
		t.Fatal(err)
	}
	variants, pairs := 0, 0
	for _, j := range jobs {
		if j.variant != nil {
			variants++
		}
		if j.pair != nil {
			pairs++
		}
	}
	if variants != 28 || pairs != len(litmus.Pairs()) {
		t.Errorf("resolveFix(all) = %d variants + %d pairs, want 28 + %d",
			variants, pairs, len(litmus.Pairs()))
	}
}

// TestResolveFixFamily: a bare spec name selects its whole buggy family, and
// a name shared with a litmus pair selects both.
func TestResolveFixFamily(t *testing.T) {
	jobs, err := resolveFix("seat-booking")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("seat-booking family: %d jobs, want 3 buggy variants", len(jobs))
	}
	jobs, err = resolveFix("saleor-capture")
	if err != nil {
		t.Fatal(err)
	}
	var pairs int
	for _, j := range jobs {
		if j.pair != nil {
			pairs++
		}
	}
	if pairs != 1 || len(jobs) != 4 {
		t.Fatalf("saleor-capture: %d jobs with %d pairs, want 3 variants + 1 pair", len(jobs), pairs)
	}
}
