package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"adhoctx/internal/litmus"
	"adhoctx/internal/repair"
	"adhoctx/internal/scenario"
	"adhoctx/internal/sched"
)

// The fix mode upgrades the linter from detector to fixer: for each buggy
// target it finds the violating schedule, replays it once by ID, classifies
// the §4 bug class from the provenance-attributed trace, emits the rewrite,
// and re-runs the explorer on the repaired program to exhaustion. A target
// only counts as repaired when the re-proof is complete with zero
// violations — the same dichotomy the scenario family and litmus suites pin.

// fixTarget is one resolved repair job.
type fixTarget struct {
	variant *scenario.Variant // scenario job when non-nil
	pair    *litmus.Pair      // litmus job when non-nil
}

// resolveFix maps a -fix argument to repair jobs:
//
//	all                  every buggy scenario variant and every litmus pair
//	smoke                one scenario variant + the smallest litmus pair (CI)
//	<spec>/<suffix>      one buggy scenario variant
//	<pair>/buggy         one litmus pair
//	<name>               every buggy variant of the spec and/or the litmus
//	                     pair with that name (some names exist as both)
func resolveFix(arg string) ([]fixTarget, error) {
	vs, err := scenario.ExpandAll()
	if err != nil {
		return nil, err
	}
	var jobs []fixTarget
	addSpec := func(spec string) bool {
		n := 0
		for _, v := range vs {
			if v.Spec.Name == spec && v.Buggy {
				jobs = append(jobs, fixTarget{variant: v})
				n++
			}
		}
		return n > 0
	}
	switch arg {
	case "all":
		for _, v := range vs {
			if v.Buggy {
				jobs = append(jobs, fixTarget{variant: v})
			}
		}
		for _, p := range litmus.Pairs() {
			p := p
			jobs = append(jobs, fixTarget{pair: &p})
		}
		return jobs, nil
	case "smoke":
		v, ok := scenario.FindVariant(vs, "saleor-capture/mem+read-before-lock")
		if !ok {
			return nil, fmt.Errorf("smoke variant missing from the family")
		}
		p, ok := litmus.Find("broadleaf-dblock")
		if !ok {
			return nil, fmt.Errorf("smoke litmus pair missing")
		}
		return []fixTarget{{variant: v}, {pair: &p}}, nil
	}
	if v, ok := scenario.FindVariant(vs, arg); ok {
		if !v.Buggy {
			return nil, fmt.Errorf("%s is a fixed variant — nothing to repair", arg)
		}
		return []fixTarget{{variant: v}}, nil
	}
	if name, suffix, ok := strings.Cut(arg, "/"); ok {
		if p, found := litmus.Find(name); found && suffix == "buggy" {
			return []fixTarget{{pair: &p}}, nil
		}
		if _, found := litmus.Find(name); found && suffix == "fixed" {
			return nil, fmt.Errorf("%s is the fixed variant — nothing to repair", arg)
		}
		return nil, fmt.Errorf("unknown repair target %q", arg)
	}
	found := addSpec(arg)
	if p, ok := litmus.Find(arg); ok {
		jobs = append(jobs, fixTarget{pair: &p})
		found = true
	}
	if !found {
		return nil, fmt.Errorf("unknown repair target %q (scenario variant, spec, litmus pair, 'all', or 'smoke')", arg)
	}
	return jobs, nil
}

// doFix runs the repair pipeline over the resolved targets. Exit codes
// follow the adhocexplore convention: 0 every target repaired and re-proven,
// 1 a pipeline step failed (no violation found, replay diverged, repair not
// clean), 2 the invocation was wrong.
func doFix(arg string, stdout, stderr io.Writer) int {
	jobs, err := resolveFix(arg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ok := true
	proved := map[string]bool{}
	for _, j := range jobs {
		if j.variant != nil {
			if !fixVariant(j.variant, proved, stdout, stderr) {
				ok = false
			}
			continue
		}
		if !fixPair(*j.pair, stdout, stderr) {
			ok = false
		}
	}
	if !ok {
		return 1
	}
	fmt.Fprintf(stdout, "repaired %d target(s)\n", len(jobs))
	return 0
}

// fixVariant runs find → replay-once → classify/blame → re-prove for one
// buggy scenario variant. Re-proofs are cached per repaired variant name:
// several mutations of one spec repair to the same fixed program.
func fixVariant(v *scenario.Variant, proved map[string]bool, stdout, stderr io.Writer) bool {
	fmt.Fprintf(stdout, "== fix %s ==\n", v.Name)
	start := time.Now()
	rep, err := scenario.ExploreDFS(v)
	if err != nil {
		fmt.Fprintf(stderr, "%s: explore: %v\n", v.Name, err)
		return false
	}
	if rep.Violation == nil {
		fmt.Fprintf(stderr, "%s: no violation within the %d-schedule budget\n", v.Name, v.Budget)
		return false
	}
	id := rep.Violation.ScheduleID
	if rep.Violation.MinScheduleID != "" {
		id = rep.Violation.MinScheduleID
	}
	fmt.Fprintf(stdout, "violation after %d schedules (%v)\n",
		rep.Schedules, time.Since(start).Round(time.Millisecond))

	// Replay the violating schedule once, with provenance attribution: the
	// blame both certifies the reproduction and names what the repair
	// changes.
	b, err := repair.BlameSchedule(v, id)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", v.Name, err)
		return false
	}
	indent(stdout, b.Format())

	if proved[b.Fix.RepairedName()] {
		fmt.Fprintf(stdout, "REPAIRED %s -> %s (already proven)\n", v.Name, b.Fix.RepairedName())
		return true
	}
	prep, err := repair.Prove(b.Fix)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", v.Name, err)
		return false
	}
	proved[b.Fix.RepairedName()] = true
	fmt.Fprintf(stdout, "re-proof: %d schedules clean, complete=%v\n", prep.Schedules, prep.Complete)
	fmt.Fprintf(stdout, "REPAIRED %s -> %s\n", v.Name, b.Fix.RepairedName())
	return true
}

// fixPair runs the same pipeline for one litmus pair: the repaired program
// is the pair's hand-written fixed variant.
func fixPair(p litmus.Pair, stdout, stderr io.Writer) bool {
	target := p.Name + "/buggy"
	fmt.Fprintf(stdout, "== fix %s ==\n", target)
	ex := &sched.Explorer{Prog: p.Buggy}
	rep, err := ex.ExploreDFS()
	if err != nil {
		fmt.Fprintf(stderr, "%s: explore: %v\n", target, err)
		return false
	}
	if rep.Violation == nil {
		fmt.Fprintf(stderr, "%s: DFS found no violation in %d schedules\n", target, rep.Schedules)
		return false
	}
	id := rep.Violation.ScheduleID
	if rep.Violation.MinScheduleID != "" {
		id = rep.Violation.MinScheduleID
	}
	fmt.Fprintf(stdout, "violation after %d schedules: %v\n", rep.Schedules, rep.Violation.Err)
	rrep, err := ex.ReplayID(id)
	if err != nil {
		fmt.Fprintf(stderr, "%s: replay: %v\n", target, err)
		return false
	}
	if rrep.Diverged || rrep.Violation == nil {
		fmt.Fprintf(stderr, "%s: schedule %s did not reproduce (diverged=%v)\n", target, id, rrep.Diverged)
		return false
	}
	fmt.Fprintf(stdout, "replayed %s: reproduced\n", id)

	fix, err := repair.ForLitmus(p)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", target, err)
		return false
	}
	fmt.Fprintf(stdout, "class: %s\n", fix.Class)
	fmt.Fprintf(stdout, "repair (%s): %s\n", fix.Strategy, fix.Note)
	prep, err := repair.Prove(fix)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", target, err)
		return false
	}
	fmt.Fprintf(stdout, "re-proof: %d schedules clean, complete=%v\n", prep.Schedules, prep.Complete)
	fmt.Fprintf(stdout, "REPAIRED %s -> %s\n", target, fix.RepairedName())
	return true
}

func indent(w io.Writer, text string) {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		fmt.Fprintf(w, "  %s\n", line)
	}
}
