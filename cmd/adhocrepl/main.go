// Command adhocrepl runs the replicated, partitioned serving tier end to
// end: P partitions, each served by one semi-sync leader and N-1 followers
// over the binary wire protocol, fronted by the shard-aware router. Each
// seed drives router-routed transfers and bounded-staleness reads, kills
// one seed-chosen partition's leader mid-workload (unless -nokill),
// promotes the follower with the highest applied LSN, and checks the
// oracles: every acknowledged transfer survives onto the promoted leader,
// each partition's committed history stays serializable, balances are
// conserved, and no lock outlives the run.
//
// Usage:
//
//	go run ./cmd/adhocrepl -nodes 3 -partitions 4      # one seed, failover demo
//	go run ./cmd/adhocrepl -chaos -seeds 20            # CI leader-kill sweep
//	go run ./cmd/adhocrepl -chaos -seed 7 -seeds 1     # replay one seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adhoctx/internal/chaos"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "first seed")
		seeds      = flag.Int("seeds", 1, "number of consecutive seeds to run")
		partitions = flag.Int("partitions", 2, "partition count")
		nodes      = flag.Int("nodes", 3, "nodes per partition (1 leader + N-1 followers)")
		clients    = flag.Int("clients", 4, "concurrent router-driven workers per seed")
		ops        = flag.Int("ops", 30, "operations per worker (every 4th is a read)")
		rows       = flag.Int("rows", 4, "accounts per partition")
		nokill     = flag.Bool("nokill", false, "do not kill any leader (steady-state run)")
		chaosMode  = flag.Bool("chaos", false, "enable the network fault schedule (drops, torn frames, delays)")
		group      = flag.Bool("groupcommit", false, "run every node with WAL group commit")
		fsync      = flag.Duration("fsync", 0, "simulated WAL device flush time")
		verbose    = flag.Bool("v", false, "print every seed's report, not just failures")
	)
	flag.Parse()

	if *nodes < 2 {
		fmt.Fprintln(os.Stderr, "adhocrepl: -nodes must be at least 2 (leader + 1 follower)")
		os.Exit(2)
	}
	mk := func(s int64) chaos.ReplConfig {
		cfg := chaos.ReplConfig{
			Seed:        s,
			Partitions:  *partitions,
			Followers:   *nodes - 1,
			Clients:     *clients,
			Ops:         *ops,
			Rows:        *rows,
			KillLeader:  !*nokill,
			GroupCommit: *group,
			Fsync:       *fsync,
		}
		if *chaosMode {
			cfg.Plan = chaos.DefaultReplConfig(s).Plan
		}
		return cfg
	}

	start := time.Now()
	var failures int
	for s := *seed; s < *seed+int64(*seeds); s++ {
		rep, err := chaos.ReplRun(mk(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: harness failure: %v\n", s, err)
			os.Exit(2)
		}
		switch {
		case rep.Failed():
			failures++
			fmt.Print(rep.Summary())
		case *verbose || *seeds == 1:
			fmt.Print(rep.Summary())
		default:
			fmt.Printf("seed %d: ok (%d transfers, %d markers, killed p%d at %q, promotedLSN=%d, redirects=%d)\n",
				rep.Seed, rep.Transfers, rep.AckedMarkers, rep.KilledPartition,
				rep.CrashPoint, rep.PromotedLSN, rep.Redirects)
		}
	}
	fmt.Printf("%d seeds in %s: %d failed\n", *seeds, time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
