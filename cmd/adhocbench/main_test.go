package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adhoctx/internal/experiments"
)

// These tests pin the -bench CLI contract the CI bench-regression job relies
// on: exit 0 = suite ran clean, 1 = the run or the baseline comparison
// failed, 2 = the invocation itself was wrong. Invocation errors (unknown
// -mode, unusable -baseline) must be rejected BEFORE any measurement runs —
// a mistyped flag on a multi-minute bench run should fail instantly.

func TestDoBenchUsageErrors(t *testing.T) {
	start := time.Now()
	if got := doBench(1, time.Millisecond, "bogus", "", ""); got != 2 {
		t.Errorf("doBench(mode=bogus) = %d, want 2", got)
	}
	missing := filepath.Join(t.TempDir(), "no-such-baseline.json")
	if got := doBench(1, time.Millisecond, "ab", "", missing); got != 2 {
		t.Errorf("doBench(missing baseline) = %d, want 2", got)
	}
	garbled := filepath.Join(t.TempDir(), "garbled.json")
	if err := os.WriteFile(garbled, []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := doBench(1, time.Millisecond, "ab", "", garbled); got != 2 {
		t.Errorf("doBench(garbled baseline) = %d, want 2", got)
	}
	// All three must have bailed before any measurement window opened.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("usage errors took %v; they must fail before the suite runs", elapsed)
	}
}

func TestDoBenchModeOCCReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the bench suite")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if got := doBench(2, 100*time.Millisecond, "occ", path, ""); got != 0 {
		t.Fatalf("doBench(mode=occ) = %d, want 0", got)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	var occCurve, occCommit, occMix bool
	for _, r := range rep.Results {
		if strings.Contains(r.Name, "/2pl") {
			t.Errorf("mode occ emitted 2PL A/B row %s", r.Name)
		}
		switch {
		case strings.HasPrefix(r.Name, "ab/hotkey/occ/"), strings.HasPrefix(r.Name, "ab/mixed/occ/"):
			occCurve = true
		case r.Name == "ab/commit/occ":
			occCommit = r.Gate
		case strings.HasPrefix(r.Name, "genmix/") && strings.HasSuffix(r.Name, "/occ"):
			occMix = true
		}
	}
	if !occCurve || !occCommit || !occMix {
		t.Errorf("mode occ report missing rows: curve=%v gatedCommit=%v genmix=%v",
			occCurve, occCommit, occMix)
	}
}

func TestDoBenchBaselineRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the bench suite")
	}
	// A baseline claiming an impossible gated throughput must trip the
	// comparison: any real run regresses against it, exit 1.
	base := experiments.BenchReport{Results: []experiments.BenchResult{
		{Name: "commit/group", OpsPerSec: 1e12, Gate: true},
	}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inflated.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := doBench(2, 100*time.Millisecond, "2pl", "", path); got != 1 {
		t.Errorf("doBench(inflated baseline) = %d, want 1 (regression)", got)
	}
}
