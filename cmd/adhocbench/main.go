// Command adhocbench regenerates the paper's evaluation figures:
//
//	adhocbench -fig 2               # lock primitive latencies
//	adhocbench -fig 3 -dur 2s       # coordination-granularity throughput
//	adhocbench -fig 4               # rollback-method latencies
//	adhocbench                      # all three
//	adhocbench -addr host:port      # Figure-2-style workload over TCP
//	                                # against a live adhocserve
//	adhocbench -bench -json BENCH_pr4.json
//	                                # commit-throughput suite, JSON report
//	adhocbench -bench -baseline BENCH_pr4.json
//	                                # re-run and fail on >20% regression
//	adhocbench -bench -mode occ     # A/B rows for one execution mode only
//	                                # (2pl, occ, or ab = both)
//
// Absolute numbers depend on the simulated latency profile (see
// EXPERIMENTS.md); the shapes are the reproduction target.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"adhoctx/internal/core"
	"adhoctx/internal/experiments"
	"adhoctx/internal/obs"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (2, 3, or 4; 0 = all)")
	dur := flag.Duration("dur", time.Second, "measurement window per Figure 3 cell")
	clients := flag.Int("clients", 8, "closed-loop clients for Figure 3")
	iters := flag.Int("iters", 200, "lock/unlock pairs per primitive for Figure 2")
	noHTTP := flag.Bool("nohttp", false, "bypass the HTTP layer in Figure 3")
	ablate := flag.Bool("ablate", false, "run the design-choice ablations instead of the figures")
	metrics := flag.Bool("metrics", false, "print the obs registry snapshot after each figure")
	addr := flag.String("addr", "", "drive a live adhocserve at this address instead of running in-process")
	bench := flag.Bool("bench", false, "run the commit-throughput benchmark suite instead of the figures")
	writers := flag.Int("writers", 32, "concurrent committers for -bench")
	benchDur := flag.Duration("benchdur", time.Second, "measurement window per -bench workload")
	mode := flag.String("mode", "ab", "execution modes for the -bench A/B rows: 2pl, occ, or ab (both)")
	jsonPath := flag.String("json", "", "write the -bench report to this file as JSON")
	baseline := flag.String("baseline", "", "compare the -bench run against this JSON baseline; exit 1 on >20% regression in gated workloads")
	flag.Parse()

	if *bench {
		os.Exit(doBench(*writers, *benchDur, *mode, *jsonPath, *baseline))
	}

	if *addr != "" {
		cfg := experiments.DefaultRemoteConfig(*addr)
		cfg.Iters = *iters
		cfg.Clients = *clients
		res, err := experiments.RemoteFigure2(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderRemote(*addr, res))
		return
	}

	// newRegistry returns a fresh registry per figure when -metrics is set
	// (so each snapshot covers only that figure), or nil to keep the
	// instrumented paths on their single-atomic-load fast path.
	newRegistry := func() *obs.Registry {
		if !*metrics {
			return nil
		}
		reg := obs.NewRegistry()
		core.WireObs(reg)
		return reg
	}
	printRegistry := func(reg *obs.Registry) {
		if reg == nil {
			return
		}
		fmt.Println("--- metrics ---")
		fmt.Print(reg.Text())
	}

	if *ablate {
		rtt := 150 * time.Microsecond
		var rows []experiments.Ablation
		for _, run := range []func() ([]experiments.Ablation, error){
			func() ([]experiments.Ablation, error) { return experiments.AblationGranularity(*dur, *clients, rtt) },
			func() ([]experiments.Ablation, error) { return experiments.AblationLockPrimitive(*dur, *clients, rtt) },
		} {
			part, err := run()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rows = append(rows, part...)
		}
		fmt.Print(experiments.RenderAblations(rows))
		return
	}

	run := func(n int) error {
		reg := newRegistry()
		switch n {
		case 2:
			cfg := experiments.DefaultFigure2Config()
			cfg.Iters = *iters
			cfg.Obs = reg
			rows, err := experiments.Figure2(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure2(rows))
		case 3:
			cfg := experiments.DefaultFigure3Config()
			cfg.Duration = *dur
			cfg.Clients = *clients
			cfg.UseHTTP = !*noHTTP
			cfg.Obs = reg
			rows, err := experiments.Figure3(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure3(rows))
			fmt.Printf("geometric mean improvement under contention: %.1f%%\n",
				experiments.GeometricMeanImprovement(rows)*100)
		case 4:
			cfg := experiments.DefaultFigure4Config()
			cfg.Obs = reg
			rows, err := experiments.Figure4(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure4(rows))
		default:
			return fmt.Errorf("adhocbench: no figure %d (have 2, 3, 4)", n)
		}
		printRegistry(reg)
		return nil
	}

	figs := []int{2, 3, 4}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, n := range figs {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// doBench runs the commit-throughput suite and returns the process exit
// code: 0 = ran clean, 1 = the run or the baseline comparison failed,
// 2 = the invocation itself was wrong (unknown -mode, unusable -baseline).
// Invocation errors are rejected before any measurement runs, so a mistyped
// flag fails in milliseconds, not after the full suite.
func doBench(writers int, dur time.Duration, mode, jsonPath, baselinePath string) int {
	switch mode {
	case "", "ab", "2pl", "occ":
	default:
		fmt.Fprintf(os.Stderr, "adhocbench: unknown -mode %q (have 2pl, occ, ab)\n", mode)
		return 2
	}
	var base *experiments.BenchReport
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adhocbench:", err)
			return 2
		}
		base = new(experiments.BenchReport)
		if err := json.Unmarshal(raw, base); err != nil {
			fmt.Fprintf(os.Stderr, "adhocbench: parse baseline %s: %v\n", baselinePath, err)
			return 2
		}
	}

	cfg := experiments.DefaultCommitBenchConfig()
	cfg.Writers = writers
	cfg.Duration = dur
	cfg.Mode = mode
	rep, err := experiments.CommitBench(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(experiments.RenderBench(rep))
	if jsonPath != "" {
		out, err := experiments.MarshalBench(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if base != nil {
		if err := experiments.CompareBench(*base, rep, 0.20); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println("no regressions vs", baselinePath)
	}
	return 0
}
