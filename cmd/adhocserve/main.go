// Command adhocserve runs the networked serving layer: an engine plus KV
// store behind internal/server's TCP front end, so workloads can be driven
// from a separate process over the real wire protocol:
//
//	adhocserve -listen 127.0.0.1:7411            # serve until SIGINT
//	adhocbench -addr 127.0.0.1:7411              # drive it from another shell
//
// The server seeds the "lock_rows" table (rows 1..rows) that the remote
// Figure 2 workload locks, plus an empty "skus" table for ad hoc use.
// Shutdown is graceful: SIGINT/SIGTERM drains in-flight transactions before
// closing, and -metrics dumps the observability registry on exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/kv"
	"adhoctx/internal/obs"
	"adhoctx/internal/server"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7411", "TCP listen address")
	sessions := flag.Int("sessions", 64, "max concurrent sessions")
	queued := flag.Int("queued", 0, "max queued dials (0 = same as -sessions)")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "max wait for a session slot")
	idle := flag.Duration("idle", 30*time.Second, "idle-session reap deadline")
	drain := flag.Duration("drain", 5*time.Second, "graceful drain window on shutdown")
	lockTimeout := flag.Duration("lock-timeout", 5*time.Second, "engine row-lock wait bound")
	dialect := flag.String("dialect", "postgres", "engine dialect: mysql or postgres")
	rows := flag.Int("rows", 16, "lock_rows rows to seed")
	metrics := flag.Bool("metrics", false, "dump the obs registry on shutdown")
	flag.Parse()

	var d engine.DialectKind
	switch *dialect {
	case "mysql":
		d = engine.MySQL
	case "postgres":
		d = engine.Postgres
	default:
		fmt.Fprintf(os.Stderr, "adhocserve: unknown dialect %q (have mysql, postgres)\n", *dialect)
		os.Exit(2)
	}

	eng := engine.New(engine.Config{Dialect: d, LockTimeout: *lockTimeout})
	eng.CreateTable(storage.NewSchema("lock_rows"))
	eng.CreateTable(storage.NewSchema("skus",
		storage.Column{Name: "name", Type: storage.TString},
		storage.Column{Name: "qty", Type: storage.TInt},
	))
	if err := eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		for pk := int64(1); pk <= int64(*rows); pk++ {
			if _, err := t.Insert("lock_rows", map[string]storage.Value{"id": pk}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		fmt.Fprintf(os.Stderr, "adhocserve: seeding: %v\n", err)
		os.Exit(1)
	}
	store := kv.NewStore(nil, sim.Latency{})

	reg := obs.NewRegistry()
	eng.WireObs(reg)
	store.WireObs(reg)

	srv := server.New(eng, store, server.Config{
		Addr:         *listen,
		MaxSessions:  *sessions,
		MaxQueued:    *queued,
		QueueWait:    *queueWait,
		IdleTimeout:  *idle,
		DrainTimeout: *drain,
	})
	srv.WireObs(reg)
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "adhocserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("adhocserve: listening on %s (%s dialect, %d sessions, idle reap %s)\n",
		srv.Addr(), *dialect, *sessions, *idle)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("adhocserve: draining...")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "adhocserve: shutdown: %v\n", err)
	}
	if *metrics {
		fmt.Print(reg.Text())
	}
}
