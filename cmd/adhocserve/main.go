// Command adhocserve runs the networked serving layer: an engine plus KV
// store behind internal/server's TCP front end, so workloads can be driven
// from a separate process over the real wire protocol:
//
//	adhocserve -listen 127.0.0.1:7411            # serve until SIGINT
//	adhocbench -addr 127.0.0.1:7411              # drive it from another shell
//
// With -data the engine's WAL lives in a real on-disk data directory
// (internal/disk): commits fsync through a segmented file log, a background
// ticker folds the committed state into checkpoints, and on startup the
// directory is recovered — checkpoint plus WAL tail — so committed state
// survives a process restart (or a kill -9; recovery truncates a torn tail):
//
//	adhocserve -data /var/tmp/adhoc -listen 127.0.0.1:7411
//
// The server seeds the "lock_rows" table (rows 1..rows) that the remote
// Figure 2 workload locks, plus an empty "skus" table for ad hoc use —
// unless -data points at a directory with recovered state, which wins.
// Shutdown is graceful: SIGINT/SIGTERM drains in-flight transactions, takes
// a final checkpoint, and -metrics dumps the observability registry on exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adhoctx/internal/disk"
	"adhoctx/internal/engine"
	"adhoctx/internal/kv"
	"adhoctx/internal/obs"
	"adhoctx/internal/server"
	"adhoctx/internal/sim"
	"adhoctx/internal/storage"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7411", "TCP listen address")
	sessions := flag.Int("sessions", 64, "max concurrent sessions")
	queued := flag.Int("queued", 0, "max queued dials (0 = same as -sessions)")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "max wait for a session slot")
	idle := flag.Duration("idle", 30*time.Second, "idle-session reap deadline")
	drain := flag.Duration("drain", 5*time.Second, "graceful drain window on shutdown")
	lockTimeout := flag.Duration("lock-timeout", 5*time.Second, "engine row-lock wait bound")
	dialect := flag.String("dialect", "postgres", "engine dialect: mysql or postgres")
	rows := flag.Int("rows", 16, "lock_rows rows to seed")
	metrics := flag.Bool("metrics", false, "dump the obs registry on shutdown")
	dataDir := flag.String("data", "", "data directory for a durable on-disk WAL (empty = in-memory simulated device)")
	segSize := flag.Int64("segsize", 1<<20, "WAL segment rotation threshold in bytes (with -data)")
	ckptEvery := flag.Duration("checkpoint-every", 10*time.Second, "background checkpoint interval (with -data)")
	group := flag.Bool("groupcommit", true, "coalesce concurrent commits into shared-fsync WAL batches (with -data)")
	flag.Parse()

	var d engine.DialectKind
	switch *dialect {
	case "mysql":
		d = engine.MySQL
	case "postgres":
		d = engine.Postgres
	default:
		fmt.Fprintf(os.Stderr, "adhocserve: unknown dialect %q (have mysql, postgres)\n", *dialect)
		os.Exit(2)
	}

	cfg := engine.Config{Dialect: d, LockTimeout: *lockTimeout}
	var (
		dstore *disk.Store
		rec    *disk.Recovered
	)
	if *dataDir != "" {
		var err error
		dstore, rec, err = disk.Open(*dataDir, disk.Options{SegmentSize: *segSize})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adhocserve: opening %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		cfg.WALDevice = dstore
		cfg.GroupCommit = *group
	}

	eng := engine.New(cfg)
	eng.CreateTable(storage.NewSchema("lock_rows"))
	eng.CreateTable(storage.NewSchema("skus",
		storage.Column{Name: "name", Type: storage.TString},
		storage.Column{Name: "qty", Type: storage.TInt},
	))
	if rec != nil && !rec.Empty() {
		if err := eng.LoadRecovered(rec.Checkpoint, rec.Tail, rec.LastLSN); err != nil {
			fmt.Fprintf(os.Stderr, "adhocserve: recovering %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		fmt.Printf("adhocserve: recovered %s (checkpoint lsn %d, last lsn %d, torn tail %d bytes)\n",
			*dataDir, rec.CheckpointLSN, rec.LastLSN, rec.TruncatedTail)
	} else {
		if err := eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			for pk := int64(1); pk <= int64(*rows); pk++ {
				if _, err := t.Insert("lock_rows", map[string]storage.Value{"id": pk}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "adhocserve: seeding: %v\n", err)
			os.Exit(1)
		}
	}
	store := kv.NewStore(nil, sim.Latency{})

	reg := obs.NewRegistry()
	eng.WireObs(reg)
	store.WireObs(reg)

	srv := server.New(eng, store, server.Config{
		Addr:         *listen,
		MaxSessions:  *sessions,
		MaxQueued:    *queued,
		QueueWait:    *queueWait,
		IdleTimeout:  *idle,
		DrainTimeout: *drain,
	})
	srv.WireObs(reg)
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "adhocserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("adhocserve: listening on %s (%s dialect, %d sessions, idle reap %s)\n",
		srv.Addr(), *dialect, *sessions, *idle)

	// Background checkpointing bounds recovery time and reclaims segments.
	// A checkpoint failure is logged, not fatal: the WAL alone still
	// carries every committed transaction.
	ckptStop := make(chan struct{})
	ckptDone := make(chan struct{})
	checkpoint := func(when string) {
		snap, lsn, err := eng.Snapshot()
		if err == nil {
			err = dstore.Checkpoint(snap, lsn)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "adhocserve: %s checkpoint: %v\n", when, err)
		}
	}
	if dstore != nil && *ckptEvery > 0 {
		go func() {
			defer close(ckptDone)
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ckptStop:
					return
				case <-tick.C:
					checkpoint("background")
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("adhocserve: draining...")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "adhocserve: shutdown: %v\n", err)
	}
	close(ckptStop)
	<-ckptDone
	if dstore != nil {
		// Final checkpoint after the drain: restart recovers from the
		// checkpoint alone, with an empty tail.
		checkpoint("final")
		if err := dstore.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "adhocserve: closing data dir: %v\n", err)
		}
	}
	if *metrics {
		fmt.Print(reg.Text())
	}
}
