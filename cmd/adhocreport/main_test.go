package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adhoctx/internal/disk"
	"adhoctx/internal/engine"
	"adhoctx/internal/obs"
	"adhoctx/internal/sched"
	"adhoctx/internal/storage"
	"adhoctx/internal/wal"
)

// The provenance queries promise deterministic output (the debugging story
// depends on stable, diffable evidence), so their text is pinned byte-for-
// byte against a committed fixture: a seeded run whose WAL is stored as disk
// segments plus the matching exported spans. Regenerate with
//
//	go test ./cmd/adhocreport -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the committed fixture and golden files")

const (
	fixtureDir = "testdata/fixture"
	goldenDir  = "testdata/golden"
)

// writeFixture produces the deterministic fixture under dir: a wal/ segment
// directory (small segments, so the query path crosses rotation boundaries)
// and spans.json with the run's completed spans. Everything derives from a
// fixed transaction sequence — no clocks, no randomness — so regeneration
// is byte-identical until the storage or WAL format deliberately changes.
func writeFixture(dir string) error {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 10 * time.Second})
	reg := obs.NewRegistry()
	eng.WireObs(reg)
	reg.Spans().RetainCompleted(64)
	eng.CreateTable(storage.NewSchema("orders",
		storage.Column{Name: "total", Type: storage.TInt},
		storage.Column{Name: "captured", Type: storage.TInt},
	))
	eng.CreateTable(storage.NewSchema("posts",
		storage.Column{Name: "content", Type: storage.TString},
		storage.Column{Name: "ver", Type: storage.TInt},
	))
	run := func(tag string, fn func(t *engine.Txn) error) error {
		return eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			t.SetTag(tag)
			return fn(t)
		})
	}
	var order, post int64
	steps := []func() error{
		func() error {
			return run("seed", func(t *engine.Txn) error {
				var err error
				if order, err = t.Insert("orders", map[string]storage.Value{
					"total": int64(100), "captured": int64(0)}); err != nil {
					return err
				}
				post, err = t.Insert("posts", map[string]storage.Value{
					"content": "v0", "ver": int64(1)})
				return err
			})
		},
		// The Saleor overcharge story: two captures of 60 against a 100
		// total both "validated" elsewhere; the second is the corruption a
		// -why orders:<pk> query has to explain.
		func() error {
			return run("capture-0", func(t *engine.Txn) error {
				_, err := t.Update("orders", storage.ByPK(order),
					map[string]storage.Value{"captured": int64(60)})
				return err
			})
		},
		func() error {
			return run("capture-1", func(t *engine.Txn) error {
				_, err := t.Update("orders", storage.ByPK(order),
					map[string]storage.Value{"captured": int64(120)})
				return err
			})
		},
		// The Discourse lost-edit story on the posts row.
		func() error {
			return run("edit-0", func(t *engine.Txn) error {
				_, err := t.Update("posts", storage.ByPK(post),
					map[string]storage.Value{"content": "alice's edit", "ver": int64(2)})
				return err
			})
		},
		func() error {
			return run("edit-1", func(t *engine.Txn) error {
				_, err := t.Update("posts", storage.ByPK(post),
					map[string]storage.Value{"content": "bob's edit", "ver": int64(3)})
				return err
			})
		},
		func() error {
			return run("cleanup", func(t *engine.Txn) error {
				_, err := t.Delete("posts", storage.ByPK(post))
				return err
			})
		},
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}

	// Store the WAL as disk segments, one record per append with a tiny
	// rotation threshold so the fixture spans several segment files.
	recs, err := wal.Records(eng.WALBytes())
	if err != nil {
		return err
	}
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return err
	}
	st, _, err := disk.Open(walDir, disk.Options{SegmentSize: 128})
	if err != nil {
		return err
	}
	for _, r := range recs {
		b, err := wal.Encode(r)
		if err != nil {
			return err
		}
		if err := st.Append(b); err != nil {
			return err
		}
		if err := st.Sync(); err != nil {
			return err
		}
	}
	if err := st.Close(); err != nil {
		return err
	}

	spans, err := json.MarshalIndent(reg.Spans().Completed(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "spans.json"), append(spans, '\n'), 0o644)
}

// goldenCases are the pinned query invocations. Txn 3 is capture-1 (the
// overcharging transaction); the blame case explores the buggy variant
// itself, so its golden also pins the discovered minimal schedule ID.
func goldenCases() []struct {
	name   string
	args   []string
	golden string
} {
	walDir := filepath.Join(fixtureDir, "wal")
	spans := filepath.Join(fixtureDir, "spans.json")
	return []struct {
		name   string
		args   []string
		golden string
	}{
		{"summary", []string{"-wal", walDir, "-spans", spans}, "summary.txt"},
		{"why", []string{"-wal", walDir, "-spans", spans, "-why", "orders:1"}, "why.txt"},
		{"why-missing", []string{"-wal", walDir, "-why", "orders:99"}, "why-missing.txt"},
		{"txn", []string{"-wal", walDir, "-spans", spans, "-txn", "3"}, "txn.txt"},
		{"blame", []string{"-blame", "saleor-capture/mem+read-before-lock"}, "blame.txt"},
	}
}

func TestGoldenQueries(t *testing.T) {
	if *update {
		if err := os.RemoveAll(fixtureDir); err != nil {
			t.Fatal(err)
		}
		if err := writeFixture(fixtureDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
			}
			path := filepath.Join(goldenDir, tc.golden)
			if *update {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s",
					path, out.String(), want)
			}
		})
	}
}

// TestFixtureFresh regenerates the fixture into a temp dir and compares it
// byte-for-byte with the committed one: if a storage/WAL/span change shifts
// the fixture's bytes, this fails until the fixture and goldens are
// deliberately regenerated with -update.
func TestFixtureFresh(t *testing.T) {
	if *update {
		t.Skip("fixture just rewritten")
	}
	tmp := t.TempDir()
	if err := writeFixture(tmp); err != nil {
		t.Fatal(err)
	}
	compareFile := func(rel string) {
		t.Helper()
		want, err := os.ReadFile(filepath.Join(fixtureDir, rel))
		if err != nil {
			t.Fatalf("committed fixture missing %s (run with -update): %v", rel, err)
		}
		got, err := os.ReadFile(filepath.Join(tmp, rel))
		if err != nil {
			t.Fatalf("regeneration did not produce %s: %v", rel, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("fixture file %s drifted (%d vs %d bytes); regenerate with -update", rel, len(got), len(want))
		}
	}
	for _, dir := range []string{fixtureDir, tmp} {
		ents, err := os.ReadDir(filepath.Join(dir, "wal"))
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			t.Fatalf("%s/wal is empty", dir)
		}
	}
	committed, err := os.ReadDir(filepath.Join(fixtureDir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := os.ReadDir(filepath.Join(tmp, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(committed) != len(fresh) {
		t.Fatalf("segment count drifted: committed %d, fresh %d", len(committed), len(fresh))
	}
	for _, e := range committed {
		compareFile(filepath.Join("wal", e.Name()))
	}
	compareFile("spans.json")
}

// TestExitCodes pins the CLI's 0/1/2 convention (matching adhocexplore):
// 2 for malformed invocations, 1 for well-formed queries that cannot be
// answered.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"why-without-wal", []string{"-why", "orders:1"}, 2},
		{"why-bad-row", []string{"-wal", filepath.Join(fixtureDir, "wal"), "-why", "garbage"}, 2},
		{"wal-missing-dir", []string{"-wal", filepath.Join(fixtureDir, "no-such-dir")}, 1},
		{"spans-missing-file", []string{"-wal", filepath.Join(fixtureDir, "wal"), "-spans", "no-such.json"}, 1},
		{"blame-unknown-variant", []string{"-blame", "no-such-spec/mem"}, 2},
		{"blame-fixed-variant", []string{"-blame", "saleor-capture/mem"}, 2},
		{"blame-clean-schedule", []string{"-blame", "saleor-capture/mem+read-before-lock:" + cleanScheduleID()}, 1},
		{"bad-table", []string{"-table", "9"}, 2},
		{"bad-flag", []string{"-no-such-flag"}, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, got, tc.want, out.String(), errb.String())
			}
		})
	}
}

// cleanScheduleID returns a well-formed schedule ID with no recorded picks:
// its default-pick replay runs near-serially and stays clean, so blaming it
// must fail with exit 1.
func cleanScheduleID() string {
	return sched.EncodeSchedule(2, nil)
}
