// Command adhocreport regenerates the paper's study tables from the case
// catalog, and answers provenance queries over recovered WAL directories:
//
//	adhocreport            # everything
//	adhocreport -table 4   # one table (2, 3, 4, 5, 7)
//	adhocreport -findings  # the Findings 1–8 aggregates
//	adhocreport -cases     # the full 91-case listing
//
//	adhocreport -wal dir                          # provenance summary
//	adhocreport -wal dir -spans spans.json -why orders:1
//	adhocreport -wal dir -spans spans.json -txn 3
//	adhocreport -blame 'saleor-capture/mem+read-before-lock'
//	adhocreport -blame '<variant>:<schedule-id>'
//
// The provenance queries join WAL records (which txn last wrote this row?)
// with span tags (which API call was that?); -blame replays a violating
// schedule of a buggy scenario variant, attributes the invariant's target
// rows, and prints the repair internal/repair emits.
//
// Exit status: 0 on success, 1 when a query or blame cannot be answered
// (unreadable WAL, schedule without a violation), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"adhoctx/internal/catalog"
	"adhoctx/internal/obs"
	"adhoctx/internal/provenance"
	"adhoctx/internal/repair"
	"adhoctx/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry: parses args, dispatches, returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adhocreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "print one table (1-7)")
	findings := fs.Bool("findings", false, "print the findings summary")
	cases := fs.Bool("cases", false, "print the full case listing")
	walDir := fs.String("wal", "", "provenance: recovered WAL directory to query")
	spansFile := fs.String("spans", "", "provenance: completed-span JSON to join (txn tags and outcomes)")
	why := fs.String("why", "", "provenance: explain 'table:pk' — last writer, then full history")
	txn := fs.Uint64("txn", 0, "provenance: list one transaction's committed writes")
	blame := fs.String("blame", "", "blame '<variant>[:<schedule-id>]': attribute a violating schedule and print its repair")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *blame != "":
		return doBlame(*blame, stdout, stderr)
	case *why != "" || *txn != 0 || *walDir != "":
		return doProvenance(*walDir, *spansFile, *why, *txn, stdout, stderr)
	case *table != 0:
		out, err := renderTable(*table)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprint(stdout, out)
	case *findings:
		fmt.Fprint(stdout, catalog.RenderFindings())
	case *cases:
		fmt.Fprint(stdout, renderCases())
	default:
		for _, n := range []int{1, 2, 3, 4, 5, 6, 7} {
			out, _ := renderTable(n)
			fmt.Fprintln(stdout, out)
		}
		fmt.Fprintln(stdout, catalog.RenderFindings())
	}
	return 0
}

// doProvenance answers -why / -txn / summary queries over a WAL directory,
// optionally joined with exported spans.
func doProvenance(walDir, spansFile, why string, txn uint64, stdout, stderr io.Writer) int {
	if walDir == "" {
		fmt.Fprintln(stderr, "provenance queries need -wal <dir>")
		return 2
	}
	ix, err := provenance.FromDir(walDir)
	if err != nil {
		fmt.Fprintf(stderr, "recover %s: %v\n", walDir, err)
		return 1
	}
	if spansFile != "" {
		spans, err := loadSpans(spansFile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		ix.AttachSpans(spans)
	}
	switch {
	case why != "":
		table, pk, err := parseRowArg(why)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprint(stdout, ix.FormatWhy(table, pk))
	case txn != 0:
		fmt.Fprint(stdout, ix.FormatTxn(txn))
	default:
		fmt.Fprint(stdout, ix.FormatSummary())
	}
	return 0
}

// loadSpans reads a JSON array of completed spans (the shape
// obs.SpanTracker.Completed marshals to).
func loadSpans(path string) ([]obs.CompletedSpan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spans: %w", err)
	}
	var spans []obs.CompletedSpan
	if err := json.Unmarshal(raw, &spans); err != nil {
		return nil, fmt.Errorf("spans %s: %w", path, err)
	}
	return spans, nil
}

// parseRowArg parses "table:pk".
func parseRowArg(arg string) (string, int64, error) {
	table, pkStr, ok := strings.Cut(arg, ":")
	if !ok || table == "" {
		return "", 0, fmt.Errorf("-why wants 'table:pk', got %q", arg)
	}
	pk, err := strconv.ParseInt(pkStr, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("-why wants 'table:pk', got %q: %v", arg, err)
	}
	return table, pk, nil
}

// doBlame resolves "<variant>[:<schedule-id>]" against the scenario family:
// without an ID it explores the buggy variant to find its violation first
// (schedule IDs are base64url, so ':' splits unambiguously).
func doBlame(arg string, stdout, stderr io.Writer) int {
	name, id, hasID := strings.Cut(arg, ":")
	vs, err := scenario.ExpandAll()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	v, ok := scenario.FindVariant(vs, name)
	if !ok {
		fmt.Fprintf(stderr, "unknown scenario variant %q\n", name)
		return 2
	}
	if !v.Buggy {
		fmt.Fprintf(stderr, "%s is a fixed variant — nothing to blame\n", name)
		return 2
	}
	if !hasID || id == "" {
		rep, err := scenario.ExploreDFS(v)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if rep.Violation == nil {
			fmt.Fprintf(stderr, "%s: no violation within the %d-schedule budget\n", name, v.Budget)
			return 1
		}
		id = rep.Violation.ScheduleID
		if rep.Violation.MinScheduleID != "" {
			id = rep.Violation.MinScheduleID
		}
	}
	b, err := repair.BlameSchedule(v, id)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprint(stdout, b.Format())
	return 0
}

func renderTable(n int) (string, error) {
	switch n {
	case 1:
		return catalog.RenderTable1(), nil
	case 2:
		return catalog.RenderTable2(), nil
	case 3:
		return catalog.RenderTable3(), nil
	case 4:
		return catalog.RenderTable4(), nil
	case 5:
		return catalog.RenderTable5(), nil
	case 6:
		return catalog.RenderTable6(), nil
	case 7:
		return catalog.RenderTable7(), nil
	default:
		return "", fmt.Errorf("adhocreport: no table %d (have 1-7)", n)
	}
}

func renderCases() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-22s %-10s %-9s %-8s %s\n", "case", "api", "cc", "impl", "critical", "issues")
	for _, c := range catalog.Cases() {
		impl := c.LockImpl
		if c.CC == catalog.Validation {
			impl = c.ValidImpl.String()
		}
		issues := make([]string, 0, len(c.Issues))
		for _, i := range c.Issues {
			issues = append(issues, i.String())
		}
		fmt.Fprintf(&b, "%-14s %-22s %-10s %-9s %-8v %s\n",
			c.ID, c.API, c.CC, impl, c.Critical, strings.Join(issues, "; "))
	}
	return b.String()
}
