// Command adhocreport regenerates the paper's study tables from the case
// catalog:
//
//	adhocreport            # everything
//	adhocreport -table 4   # one table (2, 3, 4, 5, 7)
//	adhocreport -findings  # the Findings 1–8 aggregates
//	adhocreport -cases     # the full 91-case listing
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adhoctx/internal/catalog"
)

func main() {
	table := flag.Int("table", 0, "print one table (1-7)")
	findings := flag.Bool("findings", false, "print the findings summary")
	cases := flag.Bool("cases", false, "print the full case listing")
	flag.Parse()

	switch {
	case *table != 0:
		out, err := renderTable(*table)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
	case *findings:
		fmt.Print(catalog.RenderFindings())
	case *cases:
		fmt.Print(renderCases())
	default:
		for _, n := range []int{1, 2, 3, 4, 5, 6, 7} {
			out, _ := renderTable(n)
			fmt.Println(out)
		}
		fmt.Println(catalog.RenderFindings())
	}
}

func renderTable(n int) (string, error) {
	switch n {
	case 1:
		return catalog.RenderTable1(), nil
	case 2:
		return catalog.RenderTable2(), nil
	case 3:
		return catalog.RenderTable3(), nil
	case 4:
		return catalog.RenderTable4(), nil
	case 5:
		return catalog.RenderTable5(), nil
	case 6:
		return catalog.RenderTable6(), nil
	case 7:
		return catalog.RenderTable7(), nil
	default:
		return "", fmt.Errorf("adhocreport: no table %d (have 1-7)", n)
	}
}

func renderCases() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-22s %-10s %-9s %-8s %s\n", "case", "api", "cc", "impl", "critical", "issues")
	for _, c := range catalog.Cases() {
		impl := c.LockImpl
		if c.CC == catalog.Validation {
			impl = c.ValidImpl.String()
		}
		issues := make([]string, 0, len(c.Issues))
		for _, i := range c.Issues {
			issues = append(issues, i.String())
		}
		fmt.Fprintf(&b, "%-14s %-22s %-10s %-9s %-8v %s\n",
			c.ID, c.API, c.CC, impl, c.Critical, strings.Join(issues, "; "))
	}
	return b.String()
}
