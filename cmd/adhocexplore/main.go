// Command adhocexplore model-checks the litmus programs: it enumerates (DFS)
// or samples (PCT) goroutine schedules of small multi-threaded transaction
// programs over the internal/apps case studies and checks every terminal
// state. A violation prints a replayable schedule ID and a delta-minimized
// trace; -replay re-executes a recorded schedule deterministically.
//
// Usage:
//
//	go run ./cmd/adhocexplore -list
//	go run ./cmd/adhocexplore -run all                  # DFS, buggy+fixed
//	go run ./cmd/adhocexplore -run discourse-edit/buggy
//	go run ./cmd/adhocexplore -run all -strategy pct -seeds 400
//	go run ./cmd/adhocexplore -replay 'discourse-edit/buggy:AQMAAAAAAAAAAAAAAAAAAQEBAA'
//	go run ./cmd/adhocexplore -smoke                    # CI: two smallest pairs
//
// Exit status: 0 when every buggy variant's bug is found and every fixed
// variant passes; 1 otherwise (a missed bug, a fixed-variant violation, or a
// replay that no longer reproduces).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adhoctx/internal/litmus"
	"adhoctx/internal/sched"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list litmus programs and exit")
		run      = flag.String("run", "", "program to explore: <pair>, <pair>/buggy, <pair>/fixed, or 'all'")
		strategy = flag.String("strategy", "dfs", "exploration strategy: dfs or pct")
		bound    = flag.Int("bound", 0, "preemption bound (0 = default 2, negative = unbounded)")
		steps    = flag.Int("steps", 0, "per-run step limit (0 = default)")
		max      = flag.Int("max", 0, "max schedules per DFS exploration (0 = default)")
		seed     = flag.Int64("seed", 1, "first PCT seed")
		seeds    = flag.Int("seeds", 400, "PCT seeds per program")
		replay   = flag.String("replay", "", "replay '<pair>/<variant>:<schedule-id>' and exit")
		smoke    = flag.Bool("smoke", false, "CI smoke: DFS the two smallest pairs plus one PCT sweep")
		verbose  = flag.Bool("v", false, "print clean explorations too")
	)
	flag.Parse()

	switch {
	case *list:
		for _, p := range litmus.Pairs() {
			fmt.Printf("%-20s %s\n", p.Name, p.Class)
			fmt.Printf("%20s %s\n", "", p.Doc)
		}
		return
	case *replay != "":
		os.Exit(doReplay(*replay, *steps))
	case *smoke:
		os.Exit(doSmoke(*seed, *verbose))
	case *run != "":
		os.Exit(doRun(*run, *strategy, *bound, *steps, *max, *seed, *seeds, *verbose))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// resolve maps a -run argument to (pair, wantBug, program) triples.
func resolve(arg string) ([]job, error) {
	var jobs []job
	add := func(p litmus.Pair, variant string) error {
		switch variant {
		case "", "both":
			jobs = append(jobs, job{p, true, p.Buggy}, job{p, false, p.Fixed})
		case "buggy":
			jobs = append(jobs, job{p, true, p.Buggy})
		case "fixed":
			jobs = append(jobs, job{p, false, p.Fixed})
		default:
			return fmt.Errorf("unknown variant %q (want buggy or fixed)", variant)
		}
		return nil
	}
	if arg == "all" {
		for _, p := range litmus.Pairs() {
			if err := add(p, "both"); err != nil {
				return nil, err
			}
		}
		return jobs, nil
	}
	name, variant, _ := strings.Cut(arg, "/")
	p, ok := litmus.Find(name)
	if !ok {
		return nil, fmt.Errorf("unknown program %q (try -list)", name)
	}
	if err := add(p, variant); err != nil {
		return nil, err
	}
	return jobs, nil
}

type job struct {
	pair    litmus.Pair
	wantBug bool
	prog    sched.Program
}

func explorer(j job, steps, bound, max int) *sched.Explorer {
	return &sched.Explorer{
		Prog:            j.prog,
		StepLimit:       steps,
		PreemptionBound: bound,
		MaxSchedules:    max,
		PCTLen:          j.pair.PCTLen,
	}
}

// runJob explores one program and reports whether the outcome matches the
// variant's expectation.
func runJob(j job, strategy string, bound, steps, max int, seed int64, seeds int, verbose bool) bool {
	ex := explorer(j, steps, bound, max)
	start := time.Now()
	var rep *sched.Report
	var err error
	switch strategy {
	case "dfs":
		rep, err = ex.ExploreDFS()
	case "pct":
		rep, err = ex.ExplorePCT(seed, seeds)
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (want dfs or pct)\n", strategy)
		return false
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", j.prog.Name, err)
		return false
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	switch {
	case j.wantBug && rep.Violation == nil:
		fmt.Printf("MISS  %-28s %s: no violation in %d schedules (%v)\n",
			j.prog.Name, strategy, rep.Schedules, elapsed)
		return false
	case j.wantBug:
		fmt.Printf("FOUND %-28s %s: %d schedules, %v\n", j.prog.Name, strategy, rep.Schedules, elapsed)
		if rep.Strategy == "pct" {
			fmt.Printf("      failing seed: %d\n", rep.Seed)
		}
		printViolation(j.prog.Name, rep.Violation)
		return true
	case rep.Violation != nil:
		fmt.Printf("FAIL  %-28s %s: fixed variant violated (%v)\n", j.prog.Name, strategy, elapsed)
		printViolation(j.prog.Name, rep.Violation)
		return false
	default:
		if verbose {
			fmt.Printf("PASS  %-28s %s: %d schedules clean (pruned %d, complete=%v, %v)\n",
				j.prog.Name, strategy, rep.Schedules, rep.Pruned, rep.Complete, elapsed)
		}
		return true
	}
}

func printViolation(prog string, v *sched.Violation) {
	for _, line := range strings.Split(strings.TrimRight(v.Format(), "\n"), "\n") {
		fmt.Printf("      %s\n", line)
	}
	id := v.ScheduleID
	if v.MinScheduleID != "" {
		id = v.MinScheduleID
	}
	fmt.Printf("      replay: go run ./cmd/adhocexplore -replay '%s:%s'\n", prog, id)
}

func doRun(arg, strategy string, bound, steps, max int, seed int64, seeds int, verbose bool) int {
	jobs, err := resolve(arg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ok := true
	for _, j := range jobs {
		if !runJob(j, strategy, bound, steps, max, seed, seeds, verbose) {
			ok = false
		}
	}
	if !ok {
		return 1
	}
	return 0
}

func doReplay(arg string, steps int) int {
	progName, id, found := strings.Cut(arg, ":")
	if !found {
		fmt.Fprintf(os.Stderr, "replay wants '<pair>/<variant>:<schedule-id>', got %q\n", arg)
		return 2
	}
	jobs, err := resolve(progName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(jobs) != 1 {
		fmt.Fprintf(os.Stderr, "replay wants one variant (e.g. %s/buggy), got %q\n", jobs[0].pair.Name, progName)
		return 2
	}
	ex := explorer(jobs[0], steps, 0, 0)
	rep, err := ex.ReplayID(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if rep.Diverged {
		fmt.Printf("replay diverged: the program no longer matches the recorded schedule\n")
	}
	if rep.Violation == nil {
		fmt.Printf("replay of %s: no violation\n", progName)
		return 1
	}
	printViolation(progName, rep.Violation)
	return 0
}

// doSmoke is the CI entry: bounded-exhaustive DFS on the two smallest pairs
// (both variants), plus one PCT sweep over one buggy program. Budgeted well
// under two minutes.
func doSmoke(seed int64, verbose bool) int {
	ok := true
	for _, name := range []string{"broadleaf-dblock", "saleor-capture"} {
		jobs, err := resolve(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		for _, j := range jobs {
			if !runJob(j, "dfs", 0, 0, 0, seed, 0, verbose) {
				ok = false
			}
		}
	}
	jobs, _ := resolve("saleor-capture/buggy")
	if !runJob(jobs[0], "pct", 0, 0, 0, seed, 200, verbose) {
		ok = false
	}
	if !ok {
		return 1
	}
	fmt.Println("smoke ok")
	return 0
}
