package main

import (
	"testing"

	"adhoctx/internal/litmus"
	"adhoctx/internal/sched"
)

// These tests pin the CLI contract CI and the replay lines depend on:
// exit 0 = expectations met, 1 = a variant missed/failed or a replay found
// nothing, 2 = the invocation itself was wrong. The behavior predates the
// tests; a change to any code here is a change to every committed replay
// command line and to the CI gate, so it must be deliberate.

func TestResolveShapes(t *testing.T) {
	all, err := resolve("all")
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(litmus.Pairs()); len(all) != want {
		t.Fatalf("resolve(all) = %d jobs, want %d (buggy+fixed per pair)", len(all), want)
	}

	both, err := resolve("saleor-capture")
	if err != nil || len(both) != 2 || !both[0].wantBug || both[1].wantBug {
		t.Fatalf("resolve(saleor-capture) = %d jobs (err %v), want [buggy fixed]", len(both), err)
	}
	buggy, err := resolve("saleor-capture/buggy")
	if err != nil || len(buggy) != 1 || !buggy[0].wantBug {
		t.Fatalf("resolve(saleor-capture/buggy) = %+v (err %v), want one wantBug job", buggy, err)
	}
	fixed, err := resolve("saleor-capture/fixed")
	if err != nil || len(fixed) != 1 || fixed[0].wantBug {
		t.Fatalf("resolve(saleor-capture/fixed) = %+v (err %v), want one fixed job", fixed, err)
	}

	if _, err := resolve("no-such-pair"); err == nil {
		t.Error("resolve(no-such-pair) did not error")
	}
	if _, err := resolve("saleor-capture/bogus"); err == nil {
		t.Error("resolve(saleor-capture/bogus) did not error")
	}
}

func TestDoRunExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("explores schedules")
	}
	// Unresolvable argument: usage error, exit 2 — before any exploration.
	if got := doRun("no-such-pair", "dfs", 0, 0, 0, 1, 1, false); got != 2 {
		t.Errorf("doRun(no-such-pair) = %d, want 2", got)
	}
	if got := doRun("saleor-capture/bogus", "dfs", 0, 0, 0, 1, 1, false); got != 2 {
		t.Errorf("doRun(bad variant) = %d, want 2", got)
	}
	// Unknown strategy fails the job, exit 1.
	if got := doRun("broadleaf-dblock/buggy", "bogus", 0, 0, 0, 1, 1, false); got != 1 {
		t.Errorf("doRun(bad strategy) = %d, want 1", got)
	}
	// The smallest pair, both variants: buggy found + fixed clean, exit 0.
	if got := doRun("broadleaf-dblock", "dfs", 0, 0, 0, 1, 1, false); got != 0 {
		t.Errorf("doRun(broadleaf-dblock) = %d, want 0", got)
	}
	// A buggy variant that cannot be caught in the budget is a MISS, exit 1:
	// one schedule (the no-preemption run) never trips the dblock bug.
	if got := doRun("broadleaf-dblock/buggy", "dfs", 0, 0, 1, 1, 1, false); got != 1 {
		t.Errorf("doRun(buggy, max=1) = %d, want 1 (MISS)", got)
	}
}

func TestDoReplayExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("explores schedules")
	}
	// Malformed and unresolvable arguments: exit 2.
	if got := doReplay("no-colon", 0); got != 2 {
		t.Errorf("doReplay(no-colon) = %d, want 2", got)
	}
	if got := doReplay("no-such-pair/buggy:0", 0); got != 2 {
		t.Errorf("doReplay(unknown pair) = %d, want 2", got)
	}
	// A bare pair name resolves to two variants; replay wants exactly one.
	if got := doReplay("broadleaf-dblock:0", 0); got != 2 {
		t.Errorf("doReplay(ambiguous variant) = %d, want 2", got)
	}
	if got := doReplay("broadleaf-dblock/buggy:not-a-schedule-id", 0); got != 2 {
		t.Errorf("doReplay(bad schedule id) = %d, want 2", got)
	}

	// Find a real violating schedule, then pin both replay outcomes.
	p, ok := litmus.Find("broadleaf-dblock")
	if !ok {
		t.Fatal("broadleaf-dblock missing from the catalog")
	}
	ex := &sched.Explorer{Prog: p.Buggy, PCTLen: p.PCTLen}
	rep, err := ex.ExploreDFS()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("DFS found no violation to replay")
	}
	id := rep.Violation.ScheduleID
	if rep.Violation.MinScheduleID != "" {
		id = rep.Violation.MinScheduleID
	}
	// Replaying the violating schedule on the buggy variant reproduces it.
	if got := doReplay("broadleaf-dblock/buggy:"+id, 0); got != 0 {
		t.Errorf("doReplay(violating id) = %d, want 0", got)
	}
	// The same schedule on the fixed variant finds nothing: exit 1.
	if got := doReplay("broadleaf-dblock/fixed:"+id, 0); got != 1 {
		t.Errorf("doReplay(fixed variant) = %d, want 1", got)
	}
}
