// Command adhocgen drives the scenario DSL end to end: it expands the
// declarative spec catalog into runnable ad-hoc-transaction variants,
// model-checks each against its invariants with the schedule explorer, and
// feeds generated traffic mixes through the fault-injected chaos harness.
//
// Usage:
//
//	go run ./cmd/adhocgen -list                     # specs and variant counts
//	go run ./cmd/adhocgen -expand                   # every generated variant
//	go run ./cmd/adhocgen -explore all              # DFS the whole family
//	go run ./cmd/adhocgen -explore saleor-capture   # one spec's variants
//	go run ./cmd/adhocgen -explore seat-booking/occ+validation-window
//	go run ./cmd/adhocgen -explore all -strategy pct -seeds 400
//	go run ./cmd/adhocgen -replay 'saleor-capture/omitted-check:<schedule-id>'
//	go run ./cmd/adhocgen -chaos points-transfer -seeds 20
//	go run ./cmd/adhocgen -chaos points-transfer -restart -seeds 5
//	go run ./cmd/adhocgen -spec my.scenario -explore all   # add a text spec
//	go run ./cmd/adhocgen -smoke                    # CI: expand + explore + chaos
//
// Exit status: 0 when every explored buggy variant's bug is found within its
// budget, every fixed variant is proven clean to exhaustion, and every chaos
// seed passes its oracles; 1 otherwise; 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adhoctx/internal/chaos"
	"adhoctx/internal/faults"
	"adhoctx/internal/scenario"
	"adhoctx/internal/sched"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list specs and exit")
		expand   = flag.Bool("expand", false, "list every generated variant and exit")
		explore  = flag.String("explore", "", "explore: <variant>, <spec>, or 'all'")
		strategy = flag.String("strategy", "dfs", "exploration strategy: dfs or pct")
		seed     = flag.Int64("seed", 1, "first PCT or chaos seed")
		seeds    = flag.Int("seeds", 400, "PCT seeds per variant, or chaos seeds")
		replay   = flag.String("replay", "", "replay '<variant>:<schedule-id>' and exit")
		chaosArg = flag.String("chaos", "", "run a spec's generated mix through the chaos harness")
		restart  = flag.Bool("restart", false, "with -chaos: restart mode (on-disk WAL, full-stack kills)")
		clients  = flag.Int("clients", 4, "with -chaos: concurrent workers")
		ops      = flag.Int("ops", 12, "with -chaos: operations per worker")
		scale    = flag.Int("scale", 0, "with -chaos: seed-world copies (0 = default)")
		specFile = flag.String("spec", "", "also load a text-form spec file into the catalog")
		smoke    = flag.Bool("smoke", false, "CI smoke: expand all, explore buggy variants, 20-seed chaos")
		verbose  = flag.Bool("v", false, "print clean explorations too")
	)
	flag.Parse()

	specs, err := catalog(*specFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch {
	case *list:
		os.Exit(doList(specs))
	case *expand:
		os.Exit(doExpand(specs))
	case *replay != "":
		os.Exit(doReplay(specs, *replay))
	case *chaosArg != "":
		os.Exit(doChaos(specs, *chaosArg, *restart, *seed, *seeds, *clients, *ops, *scale, *verbose))
	case *explore != "":
		os.Exit(doExplore(specs, *explore, *strategy, *seed, *seeds, *verbose))
	case *smoke:
		os.Exit(doSmoke(specs, *seed, *verbose))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// catalog is the built-in specs plus an optional text-form spec file.
func catalog(specFile string) ([]*scenario.Spec, error) {
	specs := scenario.Builtins()
	if specFile == "" {
		return specs, nil
	}
	src, err := os.ReadFile(specFile)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", specFile, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", specFile, err)
	}
	return append(specs, s), nil
}

func expandAll(specs []*scenario.Spec) ([]*scenario.Variant, error) {
	var out []*scenario.Variant
	for _, s := range specs {
		vs, err := scenario.Expand(s)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// resolve maps an -explore argument to variants: an exact variant name, a
// spec name (all its variants), or 'all'.
func resolve(specs []*scenario.Spec, arg string) ([]*scenario.Variant, error) {
	vs, err := expandAll(specs)
	if err != nil {
		return nil, err
	}
	if arg == "all" {
		return vs, nil
	}
	if v, ok := scenario.FindVariant(vs, arg); ok {
		return []*scenario.Variant{v}, nil
	}
	var matched []*scenario.Variant
	for _, v := range vs {
		if v.Spec.Name == arg {
			matched = append(matched, v)
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("unknown spec or variant %q (try -list or -expand)", arg)
	}
	return matched, nil
}

func doList(specs []*scenario.Spec) int {
	for _, s := range specs {
		vs, err := scenario.Expand(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		buggy := 0
		for _, v := range vs {
			if v.Buggy {
				buggy++
			}
		}
		budget := s.Budget
		if budget == 0 {
			budget = scenario.DefaultBudget
		}
		fmt.Printf("%-22s %d variants (%d buggy, %d fixed), budget %d\n",
			s.Name, len(vs), buggy, len(vs)-buggy, budget)
		fmt.Printf("%22s %s\n", "", s.Doc)
	}
	return 0
}

func doExpand(specs []*scenario.Spec) int {
	vs, err := expandAll(specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, v := range vs {
		kind := "fixed"
		if v.Buggy {
			kind = "buggy"
		}
		fmt.Printf("%-46s %s  budget=%d\n", v.Name, kind, v.Budget)
	}
	fmt.Printf("%d specs -> %d variants\n", len(specs), len(vs))
	return 0
}

// runVariant explores one variant and reports whether the outcome matches
// its polarity: buggy variants must violate within budget, fixed variants
// must come up clean (and, under DFS, exhaust their schedule space).
func runVariant(v *scenario.Variant, strategy string, seed int64, seeds int, verbose bool) bool {
	start := time.Now()
	var rep *sched.Report
	var err error
	switch strategy {
	case "dfs":
		rep, err = scenario.ExploreDFS(v)
	case "pct":
		rep, err = scenario.ExplorePCT(v, seed, seeds)
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (want dfs or pct)\n", strategy)
		return false
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", v.Name, err)
		return false
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	switch {
	case v.Buggy && rep.Violation == nil:
		fmt.Printf("MISS  %-46s %s: no violation in %d schedules (%v)\n",
			v.Name, strategy, rep.Schedules, elapsed)
		return false
	case v.Buggy:
		fmt.Printf("FOUND %-46s %s: %d schedules, %v\n", v.Name, strategy, rep.Schedules, elapsed)
		if rep.Strategy == "pct" {
			fmt.Printf("      failing seed: %d\n", rep.Seed)
		}
		printViolation(v.Name, rep.Violation)
		return true
	case rep.Violation != nil:
		fmt.Printf("FAIL  %-46s %s: fixed variant violated (%v)\n", v.Name, strategy, elapsed)
		printViolation(v.Name, rep.Violation)
		return false
	case strategy == "dfs" && !rep.Complete:
		fmt.Printf("FAIL  %-46s dfs: fixed variant not explored to completion (%d schedules, %d truncated)\n",
			v.Name, rep.Schedules, rep.Truncated)
		return false
	default:
		if verbose {
			fmt.Printf("PASS  %-46s %s: %d schedules clean (pruned %d, complete=%v, %v)\n",
				v.Name, strategy, rep.Schedules, rep.Pruned, rep.Complete, elapsed)
		}
		return true
	}
}

func printViolation(name string, viol *sched.Violation) {
	for _, line := range strings.Split(strings.TrimRight(viol.Format(), "\n"), "\n") {
		fmt.Printf("      %s\n", line)
	}
	id := viol.ScheduleID
	if viol.MinScheduleID != "" {
		id = viol.MinScheduleID
	}
	fmt.Printf("      replay: go run ./cmd/adhocgen -replay '%s:%s'\n", name, id)
}

func doExplore(specs []*scenario.Spec, arg, strategy string, seed int64, seeds int, verbose bool) int {
	vs, err := resolve(specs, arg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ok := true
	for _, v := range vs {
		if !runVariant(v, strategy, seed, seeds, verbose) {
			ok = false
		}
	}
	if !ok {
		return 1
	}
	return 0
}

func doReplay(specs []*scenario.Spec, arg string) int {
	name, id, found := strings.Cut(arg, ":")
	if !found {
		fmt.Fprintf(os.Stderr, "replay wants '<variant>:<schedule-id>', got %q\n", arg)
		return 2
	}
	vs, err := expandAll(specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	v, ok := scenario.FindVariant(vs, name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown variant %q (try -expand)\n", name)
		return 2
	}
	rep, err := scenario.Replay(v, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if rep.Diverged {
		fmt.Printf("replay diverged: the variant no longer matches the recorded schedule\n")
	}
	if rep.Violation == nil {
		fmt.Printf("replay of %s: no violation\n", name)
		return 1
	}
	printViolation(name, rep.Violation)
	return 0
}

func doChaos(specs []*scenario.Spec, name string, restart bool, seed int64, seeds, clients, ops, scale int, verbose bool) int {
	var spec *scenario.Spec
	for _, s := range specs {
		if s.Name == name {
			spec = s
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "unknown spec %q (try -list)\n", name)
		return 2
	}
	wl, err := scenario.Mix(spec, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	mode := ""
	if restart {
		mode = " -restart"
	}
	start := time.Now()
	failures := 0
	for s := seed; s < seed+int64(seeds); s++ {
		wl.Replay = fmt.Sprintf("go run ./cmd/adhocgen -chaos %s%s -seed %d -seeds 1 -clients %d -ops %d",
			name, mode, s, clients, ops)
		summary, failed, err := runChaosSeed(wl, restart, s, clients, ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: harness failure: %v\n", s, err)
			return 2
		}
		if failed || verbose {
			fmt.Print(summary)
		}
		if failed {
			failures++
		}
	}
	fmt.Printf("%s: %d chaos seeds%s in %s: %d failed\n",
		wl.Name, seeds, mode, time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		return 1
	}
	return 0
}

func runChaosSeed(wl *chaos.Workload, restartMode bool, seed int64, clients, ops int) (string, bool, error) {
	if restartMode {
		dir, err := os.MkdirTemp("", "adhocgen-chaos-*")
		if err != nil {
			return "", false, err
		}
		rep, err := chaos.RunRestart(chaos.RestartConfig{
			Seed: seed, Clients: clients, Ops: ops, Restarts: 1,
			Plan: faults.DefaultPlan(), Dir: dir, Workload: wl,
		})
		if err != nil {
			return "", false, err
		}
		if rep.Failed() {
			return rep.Summary() + fmt.Sprintf("  data dir kept for inspection: %s\n", dir), true, nil
		}
		_ = os.RemoveAll(dir)
		return rep.Summary(), false, nil
	}
	rep, err := chaos.Run(chaos.Config{
		Seed: seed, Clients: clients, Ops: ops, Crashes: 1,
		Plan: faults.DefaultPlan(), Workload: wl,
	})
	if err != nil {
		return "", false, err
	}
	return rep.Summary(), rep.Failed(), nil
}

// doSmoke is the CI entry: expand the whole catalog, DFS every buggy variant
// to its first bug, and run a 20-seed chaos smoke on one generated family.
func doSmoke(specs []*scenario.Spec, seed int64, verbose bool) int {
	vs, err := expandAll(specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("expanded %d specs -> %d variants\n", len(specs), len(vs))
	ok := true
	for _, v := range vs {
		if !v.Buggy {
			continue
		}
		if !runVariant(v, "dfs", seed, 0, verbose) {
			ok = false
		}
	}
	if doChaos(specs, "points-transfer", false, seed, 20, 4, 10, 2, verbose) != 0 {
		ok = false
	}
	if !ok {
		return 1
	}
	fmt.Println("smoke ok")
	return 0
}
