// Command adhocsql is an interactive SQL shell over the engine — handy for
// poking at the dialect semantics the study leans on (locking reads,
// isolation levels, version-guarded updates).
//
//	adhocsql                 # PostgreSQL-like dialect (default)
//	adhocsql -dialect mysql  # MySQL-like dialect
//
// Statements end at end of line. The usual suspects work:
//
//	CREATE TABLE polls (tallies STRING, ver INT)
//	INSERT INTO polls (tallies, ver) VALUES ('{}', 1)
//	BEGIN ISOLATION LEVEL SERIALIZABLE
//	SELECT * FROM polls WHERE id = 1 FOR UPDATE
//	UPDATE polls SET ver = ver + 1 WHERE id = 1 AND ver = 1
//	COMMIT
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/sqlmini"
	"adhoctx/internal/storage"
)

func main() {
	dialect := engine.Postgres
	if len(os.Args) >= 3 && os.Args[1] == "-dialect" && os.Args[2] == "mysql" {
		dialect = engine.MySQL
	}
	eng := engine.New(engine.Config{Dialect: dialect, LockTimeout: 10 * time.Second})
	sess := sqlmini.NewSession(eng)

	fmt.Printf("adhocsql (%s dialect; default isolation %v). Type SQL, or \\q to quit.\n",
		dialect, dialect.DefaultIsolation())
	in := bufio.NewScanner(os.Stdin)
	for {
		prompt := "sql> "
		if sess.InTxn() {
			prompt = "txn> "
		}
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		}
		res, err := sess.Exec(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		printResult(res)
	}
}

func printResult(res *sqlmini.Result) {
	if res.Cols == nil {
		switch {
		case res.LastInsertID != 0:
			fmt.Printf("ok, 1 row inserted (id %d)\n", res.LastInsertID)
		case res.Affected > 0:
			fmt.Printf("ok, %d row(s) affected\n", res.Affected)
		default:
			fmt.Println("ok")
		}
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = storage.FormatValue(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d row(s))\n", len(res.Rows))
}
