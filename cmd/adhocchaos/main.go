// Command adhocchaos runs the oracle-checked chaos suite: N seeds of the
// contended transfer workload over real TCP, each under a seed-derived
// network fault schedule and server crash/recovery cycles, each checked for
// serializability of the committed history, balance conservation, and
// leaked locks. A failing seed prints its replay command and the process
// exits nonzero.
//
// With -restart, each seed instead runs restart-mode chaos: the engine's
// WAL lives in a real data directory (one fresh temp dir per seed), and
// every crash kills the ENTIRE serving stack — engine, WAL image, locks,
// server — then re-opens the directory, checkpoint and all. The oracles
// then include acked ⊆ recovered across the real restart, verified by a
// final cold re-open.
//
// Usage:
//
//	go run ./cmd/adhocchaos                 # 20 seeds, full schedule
//	go run ./cmd/adhocchaos -seeds 3 -v     # CI smoke
//	go run ./cmd/adhocchaos -seed 17 -seeds 1   # replay one seed
//	go run ./cmd/adhocchaos -restart -seeds 20  # durable-restart suite
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adhoctx/internal/chaos"
	"adhoctx/internal/faults"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "first seed")
		seeds    = flag.Int("seeds", 20, "number of consecutive seeds to run")
		clients  = flag.Int("clients", 8, "concurrent transfer workers per seed")
		ops      = flag.Int("ops", 40, "transfers per worker")
		rows     = flag.Int("rows", 8, "accounts")
		crashes  = flag.Int("crashes", 1, "server crash/recover cycles per seed")
		noFaults = flag.Bool("nofaults", false, "disable network fault injection (crashes only)")
		group    = flag.Bool("groupcommit", false, "run the engine with WAL group commit (adds the wal flush crash points)")
		shards   = flag.Int("shards", 0, "lock manager shard count (0 = default)")
		fsync    = flag.Duration("fsync", 0, "simulated WAL device flush time")
		occ      = flag.Bool("occ", false, "run transfers as optimistic (OCC) transactions; adds the engine OCC crash points")
		restart  = flag.Bool("restart", false, "restart mode: on-disk WAL, crashes kill and re-open the whole stack")
		verbose  = flag.Bool("v", false, "print every seed's report, not just failures")
	)
	flag.Parse()

	if *restart {
		runRestartMode(*seed, *seeds, *clients, *ops, *rows, *crashes, *noFaults, *verbose)
		return
	}

	mk := func(s int64) chaos.Config {
		cfg := chaos.Config{
			Seed:        s,
			Clients:     *clients,
			Ops:         *ops,
			Rows:        *rows,
			Crashes:     *crashes,
			GroupCommit: *group,
			LockShards:  *shards,
			Fsync:       *fsync,
			OCC:         *occ,
		}
		if !*noFaults {
			cfg.Plan = faults.DefaultPlan()
		}
		return cfg
	}

	start := time.Now()
	var failures int
	for s := *seed; s < *seed+int64(*seeds); s++ {
		rep, err := chaos.Run(mk(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: harness failure: %v\n", s, err)
			os.Exit(2)
		}
		if rep.Failed() {
			failures++
			fmt.Print(rep.Summary())
		} else if *verbose {
			fmt.Print(rep.Summary())
		} else {
			fmt.Printf("seed %d: ok (%d transfers, %d committed, faults d/t/wd/rd=%d/%d/%d/%d, crashes=%d)\n",
				rep.Seed, rep.Transfers, rep.Committed,
				rep.Faults[faults.Drop], rep.Faults[faults.Truncate],
				rep.Faults[faults.WriteDelay], rep.Faults[faults.ReadDelay],
				len(rep.CrashPoints))
		}
	}
	fmt.Printf("%d seeds in %s: %d failed\n", *seeds, time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func runRestartMode(seed int64, seeds, clients, ops, rows, crashes int, noFaults, verbose bool) {
	start := time.Now()
	var failures int
	for s := seed; s < seed+int64(seeds); s++ {
		dir, err := os.MkdirTemp("", "adhocchaos-restart-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: temp dir: %v\n", s, err)
			os.Exit(2)
		}
		cfg := chaos.RestartConfig{
			Seed:     s,
			Clients:  clients,
			Ops:      ops,
			Rows:     rows,
			Restarts: crashes,
			Dir:      dir,
		}
		if !noFaults {
			cfg.Plan = faults.DefaultPlan()
		}
		rep, err := chaos.RunRestart(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: harness failure: %v\n", s, err)
			os.Exit(2)
		}
		if rep.Failed() {
			failures++
			fmt.Print(rep.Summary())
			fmt.Printf("  data dir kept for inspection: %s\n", dir)
		} else {
			if verbose {
				fmt.Print(rep.Summary())
			} else {
				fmt.Printf("seed %d: ok (%d transfers, %d acked markers, boots=%d, crashes=%d, torn-bytes=%d)\n",
					rep.Seed, rep.Transfers, rep.AckedMarkers, rep.Boots,
					len(rep.CrashPoints), rep.TruncatedBytes)
			}
			_ = os.RemoveAll(dir)
		}
	}
	fmt.Printf("%d restart seeds in %s: %d failed\n", seeds, time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
