// Hints example: the §6 proxy module in action. One coordination-hint API —
// user locks, explicit row locks, savepoints — runs unchanged on both
// database dialects; where a hint is missing natively (user locks on the
// MySQL dialect, per Table 7a) the proxy transparently falls back to a
// lock table in the database.
package main

import (
	"fmt"
	"sync"
	"time"

	"adhoctx/internal/engine"
	"adhoctx/internal/proxy"
	"adhoctx/internal/storage"
)

func main() {
	for _, dialect := range []engine.DialectKind{engine.Postgres, engine.MySQL} {
		demo(dialect)
	}
}

func demo(dialect engine.DialectKind) {
	eng := engine.New(engine.Config{Dialect: dialect, LockTimeout: 10 * time.Second})
	eng.CreateTable(storage.NewSchema("coupons",
		storage.Column{Name: "uses", Type: storage.TInt},
	))
	var couponID int64
	must(eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		var err error
		couponID, err = t.Insert("coupons", map[string]storage.Value{"uses": int64(0)})
		return err
	}))

	coord := proxy.New(eng, "boot-demo", true)
	fmt.Printf("%s dialect: native user locks: %v (fallback engaged: %v)\n",
		dialect, coord.Supports(proxy.CapUserLocks), !coord.Supports(proxy.CapUserLocks))

	// The same user-lock call coordinates an RMW on both dialects.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				err := coord.WithUserLock(couponID, engine.IsolationDefault, func(t *engine.Txn) error {
					row, err := t.SelectOne("coupons", storage.ByPK(couponID))
					if err != nil {
						return err
					}
					uses := row.Get(eng.Schema("coupons"), "uses").(int64)
					_, err = t.Update("coupons", storage.ByPK(couponID),
						map[string]storage.Value{"uses": uses + 1})
					return err
				})
				must(err)
			}
		}()
	}
	wg.Wait()

	// Savepoints work the same everywhere too.
	must(eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		if err := coord.Savepoint(t, "before-bonus"); err != nil {
			return err
		}
		if _, err := t.Update("coupons", storage.ByPK(couponID),
			map[string]storage.Value{"uses": int64(999)}); err != nil {
			return err
		}
		return coord.RollbackToSavepoint(t, "before-bonus")
	}))

	var uses int64
	must(eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		row, err := t.SelectOne("coupons", storage.ByPK(couponID))
		if err != nil {
			return err
		}
		uses = row.Get(eng.Schema("coupons"), "uses").(int64)
		return nil
	}))
	fmt.Printf("%s dialect: 30 coordinated RMWs, savepoint rollback — uses = %d (want 30)\n\n", dialect, uses)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
