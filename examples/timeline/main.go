// Timeline example: Mastodon's cross-store coordination (§3.1.3). Post
// contents live in the RDBMS, timeline entries in a Redis-like KV store; a
// single post lock keeps the two consistent — something no database
// transaction can do, because the transaction cannot span both systems.
// The second half replays the TTL-lease bug (§4.1.1) with a fake clock and
// lets the fsck-style checker find the damage.
package main

import (
	"fmt"
	"time"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/apps/mastodon"
	"adhoctx/internal/engine"
	"adhoctx/internal/kv"
	"adhoctx/internal/sim"
)

func main() {
	healthy()
	leaseExpiryBug()
}

func healthy() {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	store := kv.NewStore(nil, sim.Latency{})
	locker := &locks.SetNXLocker{Store: store, Token: "worker-1"}
	app := mastodon.New(eng, store, locker)

	followers := []int64{1, 2, 3}
	must(app.CreatePost(100, "hello fediverse", followers))
	fmt.Printf("timeline of follower 1 after post: %v\n", app.Timeline(1))
	must(app.DeletePost(100, followers))
	fmt.Printf("timeline of follower 1 after delete: %v\n", app.Timeline(1))

	violations, err := app.CheckTimelineRefs(followers)
	must(err)
	fmt.Printf("consistency checker: %d violations\n", len(violations))
}

func leaseExpiryBug() {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	store := kv.NewStore(clock, sim.Latency{})
	locker := &locks.SetNXLocker{Store: store, Token: "worker-1", TTL: 2 * time.Second, Clock: clock}
	app := mastodon.New(eng, store, locker)

	followers := []int64{7}
	must(app.CreatePost(42, "soon deleted", followers))

	// The delete stalls past its lease; a boost job re-adds the timeline
	// entry under the expired lock.
	app.SlowSection = func() {
		clock.Advance(3 * time.Second)
		app.SlowSection = nil
		conn := store.Conn()
		conn.SetNXPX("post:42", "boost-job", 2*time.Second)
		conn.SAdd("timeline:7", "42")
		conn.Del("post:42")
	}
	must(app.DeletePost(42, followers))

	violations, err := app.CheckTimelineRefs(followers)
	must(err)
	fmt.Printf("after the lease expired mid-delete, the checker finds: %v\n", violations)
	fmt.Println("(this is Mastodon issue 15645: deleted posts shown in timelines)")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
