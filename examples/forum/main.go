// Forum example: the multi-request edit-post flow of §3.1.2, shown twice —
// hand-wired through the Discourse mini-app, and through the occkit
// continuation API the paper's discussion proposes (§6). A background
// shrink-image job with transaction repair runs against live edit traffic.
package main

import (
	"errors"
	"fmt"
	"time"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/apps/discourse"
	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/occkit"
	"adhoctx/internal/orm"
	"adhoctx/internal/sim"
)

func main() {
	editConflict()
	continuations()
	shrinkWithRepair()
}

// editConflict: two users edit the same post; the ad hoc transaction
// rejects the stale save instead of silently losing the first edit.
func editConflict() {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	forum := discourse.New(eng, locks.NewMemLocker())
	topic, err := forum.CreateTopic()
	must(err)
	post, err := forum.CreatePost(topic, "the original take", 0)
	must(err)

	alice, err := forum.LoadPostForEdit(post)
	must(err)
	bob, err := forum.LoadPostForEdit(post)
	must(err)

	must(forum.SubmitEdit(post, alice.Content, "alice's sharper take"))
	err = forum.SubmitEdit(post, bob.Content, "bob's rewrite")
	fmt.Printf("alice saved; bob's stale edit rejected: %v\n", errors.Is(err, discourse.ErrEditConflict))

	content, _, views, _, err := forum.Post(post)
	must(err)
	fmt.Printf("post content: %q (views from both editors survive: %d)\n", content, views)
}

// continuations: the same interaction through the §6 OCC proposal — the ORM
// tracks the read set, parks the transaction between requests, and
// validates at commit. No hand-rolled versions, no guard locks.
func continuations() {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	reg := orm.NewRegistry(eng, sim.RealClock{})
	type Article struct {
		ID   int64  `db:"id"`
		Body string `db:"body"`
	}
	reg.Register("articles", &Article{})
	art := &Article{Body: "draft"}
	must(reg.Session().Save(art))

	store := occkit.NewContinuationStore()

	// Request 1: load for editing, park the transaction, hand a token to
	// the client.
	txn := occkit.Begin(reg)
	var editing Article
	_, err := txn.Find(&editing, art.ID)
	must(err)
	tid := store.Save(txn)

	// Meanwhile another user edits and commits.
	var other Article
	_, err = reg.Session().Find(&other, art.ID)
	must(err)
	other.Body = "their published version"
	must(reg.Session().Save(&other))

	// Request 2: restore and try to commit the parked edit.
	restored, _ := store.Restore(tid)
	editing.Body = "my version"
	restored.Save(&editing)
	err = restored.Commit()
	fmt.Printf("continuation detected the interleaved edit: %v\n", errors.Is(err, core.ErrConflict))
}

// shrinkWithRepair: the Figure 4 background job, REPAIR strategy, against
// a live editor.
func shrinkWithRepair() {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 10 * time.Second})
	forum := discourse.New(eng, locks.NewMemLocker())
	forum.ImageProcessing = 20 * time.Millisecond

	orig, err := forum.CreateUpload(4096)
	must(err)
	small, err := forum.CreateUpload(512)
	must(err)
	topic, err := forum.CreateTopic()
	must(err)
	var posts []int64
	for i := 0; i < 8; i++ {
		pk, err := forum.CreatePost(topic, fmt.Sprintf("post %d with img:%d", i, orig), orig)
		must(err)
		posts = append(posts, pk)
	}

	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v, err := forum.LoadPostForEdit(posts[i%len(posts)])
			if err != nil {
				return
			}
			_ = forum.SubmitEdit(v.ID, v.Content, v.Content+".")
		}
	}()

	res, err := forum.ShrinkImage(orig, small, discourse.Repair, true)
	close(stop)
	must(err)
	violations, err := forum.CheckImageRefs()
	must(err)
	fmt.Printf("shrink-image: %d posts rewritten, %d per-post repairs, %d restarts, dangling refs: %d\n",
		res.PostsUpdated, res.PostRepairs, res.Restarts, len(violations))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
