// Bughunt example: turn on the catalogued §4 defects one by one and watch
// them produce the paper's real-world consequences, then consult the case
// catalog for what the study says about each.
package main

import (
	"fmt"
	"sync"
	"time"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/apps/broadleaf"
	"adhoctx/internal/apps/saleor"
	"adhoctx/internal/catalog"
	"adhoctx/internal/engine"
	"adhoctx/internal/sim"
)

func main() {
	lruEviction()
	overcharge()
	catalogLookup()
}

// lruEviction: Broadleaf's bounded lock table evicting held locks. Races
// are probabilistic; the demo retries until the anomaly shows (it usually
// takes one or two rounds).
func lruEviction() {
	for attempt := 1; attempt <= 20; attempt++ {
		eng := engine.New(engine.Config{
			Dialect: engine.MySQL, LockTimeout: 10 * time.Second,
			Net: sim.Latency{RTT: 100 * time.Microsecond},
		})
		lru := locks.NewLRULocker(1, true) // production-faithful: evicts held locks
		shop := broadleaf.New(eng, lru)
		sku, err := shop.CreateSKU(1_000_000)
		must(err)

		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					_ = shop.Checkout(sku, 1)
					_ = shop.AddToCart(int64(1000+w), 1, 1, 1) // churn the table
				}
			}(w)
		}
		wg.Wait()
		_, evictedHeld := lru.Stats()
		qty, sold, err := shop.SKUState(sku)
		must(err)
		if evictedHeld > 0 && qty+sold != 1_000_000 {
			fmt.Printf("MEM-LRU bug (attempt %d): %d held locks evicted; stock accounting broken: %d+%d=%d (want 1000000)\n",
				attempt, evictedHeld, qty, sold, qty+sold)
			return
		}
	}
	fmt.Println("MEM-LRU bug: the eviction race did not strike in 20 rounds (it is a race, after all)")
}

// overcharge: Saleor's capture check outside the coordinated scope.
func overcharge() {
	for attempt := 1; attempt <= 20; attempt++ {
		eng := engine.New(engine.Config{
			Dialect: engine.Postgres, LockTimeout: 10 * time.Second,
			Net: sim.Latency{RTT: 100 * time.Microsecond},
		})
		shop := saleor.New(eng)
		shop.BuggyOmitTotalCheck = true
		order, err := shop.CreateOrder(100)
		must(err)

		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = shop.CapturePayment(order, 60)
			}()
		}
		wg.Wait()
		captured, err := shop.Captured(order)
		must(err)
		if captured > 100 {
			fmt.Printf("omitted-check bug (attempt %d): captured %.0f against a 100 order — the customer was overcharged\n",
				attempt, captured)
			return
		}
	}
	fmt.Println("omitted-check bug: the race did not strike in 20 rounds")
}

// catalogLookup: what the study recorded about these defects.
func catalogLookup() {
	for _, id := range []string{"broadleaf-01", "saleor-01", "mastodon-03", "discourse-11"} {
		c := catalog.CaseByID(id)
		fmt.Printf("%s (%s, %s): issues=%d severe=%v",
			c.ID, c.App, c.API, len(c.Issues), c.Severe)
		if c.Severe {
			fmt.Printf(" (%s)", c.SevereConsequence)
		}
		fmt.Println()
	}
	f := catalog.ComputeFindings()
	fmt.Printf("study-wide: %d/%d cases buggy, %d with severe consequences\n",
		f.BuggyCases, f.TotalCases, f.SevereCases)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
