// E-commerce example: the check-out and add-payment flows the paper's
// evaluation is built on. Eight concurrent customers buy the last ten units
// of one SKU (the RMW pattern, §3.3.1) and submit payments for adjacent new
// orders (the predicate-locking pattern, §3.3.2). The ad hoc transactions
// keep stock and payments exact where the naive code would oversell and
// double-charge.
package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/apps/broadleaf"
	"adhoctx/internal/apps/spree"
	"adhoctx/internal/engine"
	"adhoctx/internal/sim"
)

func main() {
	checkoutRush()
	paymentRush()
}

// checkoutRush: the Broadleaf check-out under a flash-sale load.
func checkoutRush() {
	eng := engine.New(engine.Config{Dialect: engine.MySQL, LockTimeout: 10 * time.Second})
	shop := broadleaf.New(eng, locks.NewMemLocker())
	sku, err := shop.CreateSKU(10)
	must(err)

	var sold, rejected int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for customer := 0; customer < 8; customer++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				err := shop.Checkout(sku, 1)
				mu.Lock()
				switch {
				case err == nil:
					sold++
				case errors.Is(err, broadleaf.ErrInsufficientStock):
					rejected++
				default:
					panic(err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	qty, soldCol, err := shop.SKUState(sku)
	must(err)
	fmt.Printf("flash sale: %d sold, %d rejected; stock row says qty=%d sold=%d (conserved: %v)\n",
		sold, rejected, qty, soldCol, qty+soldCol == 10 && soldCol == int64(sold))
}

// paymentRush: Spree's add-payment on brand-new adjacent orders.
func paymentRush() {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 10 * time.Second})
	shop := spree.New(eng, sim.RealClock{}, locks.NewMemLocker())

	var wg sync.WaitGroup
	var orders []int64
	var mu sync.Mutex
	for customer := 0; customer < 8; customer++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			order, err := shop.CreateOrder(42)
			must(err)
			// The user double-clicks "pay": two concurrent submissions.
			var inner sync.WaitGroup
			for i := 0; i < 2; i++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					must(shop.AddPayment(order, 42))
				}()
			}
			inner.Wait()
			mu.Lock()
			orders = append(orders, order)
			mu.Unlock()
		}()
	}
	wg.Wait()

	total := 0
	for _, o := range orders {
		n, err := shop.PaymentCount(o)
		must(err)
		total += n
	}
	fmt.Printf("payment rush: %d orders, %d payments (exactly one each: %v)\n",
		len(orders), total, total == len(orders))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
