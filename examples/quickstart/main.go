// Quickstart: one pessimistic and one optimistic ad hoc transaction in ~60
// lines. A pessimistic ad hoc transaction wraps database operations in an
// application-level lock (Figure 1a/1b of the paper); an optimistic one
// validates before committing and retries on conflict (Figure 1c).
package main

import (
	"fmt"
	"time"

	"adhoctx/internal/adhoc/locks"
	"adhoctx/internal/adhoc/validate"
	"adhoctx/internal/core"
	"adhoctx/internal/engine"
	"adhoctx/internal/storage"
)

func main() {
	eng := engine.New(engine.Config{Dialect: engine.Postgres, LockTimeout: 5 * time.Second})
	eng.CreateTable(storage.NewSchema("counters",
		storage.Column{Name: "value", Type: storage.TInt},
		storage.Column{Name: "ver", Type: storage.TInt},
	))
	must(eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		_, err := t.Insert("counters", map[string]storage.Value{"id": int64(1), "value": int64(0), "ver": int64(1)})
		return err
	}))

	// Pessimistic: an in-memory lock guards a read–modify–write.
	locker := locks.NewMemLocker()
	must(core.WithLock(locker, "counter:1", func() error {
		return eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			row, err := t.SelectOne("counters", storage.ByPK(1))
			if err != nil {
				return err
			}
			v := row.Get(eng.Schema("counters"), "value").(int64)
			_, err = t.Update("counters", storage.ByPK(1), map[string]storage.Value{"value": v + 1})
			return err
		})
	}))
	fmt.Println("pessimistic increment committed under the ad hoc lock")

	// Optimistic: validate-and-commit in one atomic statement, with retry.
	checker := validate.Checker{Eng: eng, Table: "counters"}
	must(core.RetryOptimistic(10, func() error {
		var value, ver int64
		if err := eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
			row, err := t.SelectOne("counters", storage.ByPK(1))
			if err != nil {
				return err
			}
			schema := eng.Schema("counters")
			value = row.Get(schema, "value").(int64)
			ver = row.Get(schema, "ver").(int64)
			return nil
		}); err != nil {
			return err
		}
		return checker.CheckAndSet(1, validate.VersionGuard("ver", ver), map[string]storage.Value{
			"value": value + 1, "ver": ver + 1,
		})
	}))
	fmt.Println("optimistic increment validated and committed")

	must(eng.Run(engine.IsolationDefault, func(t *engine.Txn) error {
		row, err := t.SelectOne("counters", storage.ByPK(1))
		if err != nil {
			return err
		}
		fmt.Printf("final counter value: %v\n", row.Get(eng.Schema("counters"), "value"))
		return nil
	}))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
